package predictor

import (
	"sync"
	"testing"
)

// TestConcurrentPredict hammers one trained classifier and one trained error
// predictor from many goroutines and checks every prediction against the
// serial reference. Under -race this gates the shared-predictor concurrency
// the parallel experiment harness depends on.
func TestConcurrentPredict(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	clf := TrainClassifier(ds.Train, nil, cfg)
	ep := TrainError(ds.Train, clf, cfg)

	samples := ds.Test
	if len(samples) > 64 {
		samples = samples[:64]
	}
	wantMs := make([]float64, len(samples))
	wantErr := make([]float64, len(samples))
	for i, s := range samples {
		wantMs[i] = clf.PredictMs(s.Features)
		wantErr[i] = ep.PredictErrMs(s.Features)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				i := (g + r) % len(samples)
				if got := clf.PredictMs(samples[i].Features); got != wantMs[i] {
					errs <- "concurrent PredictMs diverged from serial"
					return
				}
				if got := ep.PredictErrMs(samples[i].Features); got != wantErr[i] {
					errs <- "concurrent PredictErrMs diverged from serial"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
