// Package predictor implements Gemini's learned service-time and error
// predictors (paper §IV): the per-millisecond NN latency classifier, the NN
// regressor and linear-classifier baselines of Fig. 7, the 95th-percentile
// distribution estimator used by Rubik and Gemini-95th, the second NN that
// predicts the first's error (§IV-C), and the moving-average error estimator
// of Gemini-α.
package predictor

import (
	"math/rand"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/search"
)

// Sample is one labeled observation: a query, its Table II features, and the
// measured service time at the default frequency (including the jitter that
// makes prediction imperfect).
type Sample struct {
	Query      corpus.Query
	Features   search.FeatureVector
	BaseWork   cpu.Work
	MeasuredMs float64 // at cpu.FDefault
}

// Dataset is a labeled collection with the train/test split used by all
// model evaluations.
type Dataset struct {
	Train []Sample
	Test  []Sample
}

// Builder produces labeled samples by executing queries on the engine and
// applying the jitter model — the reproduction's stand-in for measuring
// wall-clock service times on the Solr testbed.
type Builder struct {
	Engine    *search.Engine
	Extractor *search.Extractor
	Cost      *search.CostModel
	Jitter    *search.Jitter
}

// Sample labels a single query with a fresh jitter draw from rng.
func (b *Builder) Sample(q corpus.Query, rng *rand.Rand) Sample {
	ex := b.Engine.Search(q)
	fv := b.Extractor.Features(q)
	base := b.Cost.WorkFor(ex.Stats)
	measured := b.Jitter.MeasuredWork(base, fv, rng)
	return Sample{
		Query:      q,
		Features:   fv,
		BaseWork:   base,
		MeasuredMs: cpu.TimeFor(measured, cpu.FDefault),
	}
}

// Build labels all queries and splits them into train/test with the given
// test fraction (deterministically, by position after a seeded shuffle).
func (b *Builder) Build(queries []corpus.Query, testFrac float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, len(queries))
	for i, q := range queries {
		samples[i] = b.Sample(q, rng)
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	nTest := int(float64(len(samples)) * testFrac)
	if nTest < 1 && len(samples) > 1 {
		nTest = 1
	}
	return &Dataset{Train: samples[nTest:], Test: samples[:nTest]}
}

// featureMatrix extracts the raw feature rows (optionally restricted to a
// subset of feature indices) and the measured-ms labels.
func featureMatrix(samples []Sample, cols []int) ([][]float64, []float64) {
	X := make([][]float64, len(samples))
	Y := make([]float64, len(samples))
	for i, s := range samples {
		if cols == nil {
			row := make([]float64, search.NumFeatures)
			copy(row, s.Features[:])
			X[i] = row
		} else {
			row := make([]float64, len(cols))
			for j, c := range cols {
				row[j] = s.Features[c]
			}
			X[i] = row
		}
		Y[i] = s.MeasuredMs
	}
	return X, Y
}

// logColumns returns which Table II features should be log1p-compressed
// before standardization (the count-like, heavy-tailed ones).
func logColumns(cols []int) []bool {
	heavy := map[int]bool{
		search.FeatPostingListLength:     true,
		search.FeatNumLocalMaxima:        true,
		search.FeatLocalMaximaAboveAMean: true,
		search.FeatNumMaxScore:           true,
		search.FeatDocsIn5PctOfMaxScore:  true,
		search.FeatDocsIn5PctOfKthScore:  true,
		search.FeatDocsEverInTopK:        true,
		search.FeatVariance:              true,
	}
	if cols == nil {
		out := make([]bool, search.NumFeatures)
		for i := range out {
			out[i] = heavy[i]
		}
		return out
	}
	out := make([]bool, len(cols))
	for j, c := range cols {
		out[j] = heavy[c]
	}
	return out
}
