package predictor

import (
	"math"

	"gemini/internal/nn"
	"gemini/internal/search"
	"gemini/internal/stats"
)

// errRangeMs bounds the signed error buckets of the NN error predictor:
// classes cover [-errRangeMs, +errRangeMs] at 1 ms granularity.
const errRangeMs = 10

// NNError is Gemini's second model (§IV-C): a classifier over signed error
// buckets, trained on the residuals of a service predictor over the training
// set (labels E = measured − predicted are "easily obtained ... since we can
// keep track of the measured request latencies in the past").
// PredictErrMs is goroutine-safe (reentrant inference with pooled scratch),
// so the platform's shared error NN can serve every parallel sweep worker.
type NNError struct {
	net     *nn.Network
	scaler  *nn.Scaler
	scratch scratchPool
}

// TrainError fits the error model for the residuals of sp on train.
func TrainError(train []Sample, sp ServicePredictor, cfg Config) *NNError {
	X, _ := featureMatrix(train, nil)
	scaler := nn.FitScaler(X, logColumns(nil))
	Xs := scaler.TransformAll(X)
	Y := make([]float64, len(train))
	for i, s := range train {
		e := s.MeasuredMs - sp.PredictMs(s.Features)
		Y[i] = float64(errClass(e))
	}
	classes := 2*errRangeMs + 1
	net := nn.NewMLP(len(Xs[0]), cfg.Hidden, classes, cfg.Seed+2)
	tr := &nn.Trainer{
		Net: net, Loss: &nn.CrossEntropy{}, Opt: nn.NewAdam(cfg.LR),
		BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed + 102,
	}
	_, _ = tr.Fit(Xs, Y)
	return &NNError{net: net, scaler: scaler}
}

// errClass maps a signed ms error to a class index 0..2*errRangeMs by
// rounding to the nearest whole millisecond.
func errClass(e float64) int {
	c := int(math.Round(e)) + errRangeMs
	if c < 0 {
		c = 0
	}
	if c > 2*errRangeMs {
		c = 2 * errRangeMs
	}
	return c
}

// classToErr is the inverse mapping (bucket center).
func classToErr(c int) float64 { return float64(c - errRangeMs) }

// PredictErrMs implements ErrorPredictor.
func (e *NNError) PredictErrMs(fv search.FeatureVector) float64 {
	s := e.scratch.get(e.net)
	e.scaler.TransformInto(fv[:], s.in)
	v := classToErr(nn.Argmax(e.net.Infer(s.in, s.ar)))
	e.scratch.put(s)
	return v
}

// Name implements ErrorPredictor.
func (e *NNError) Name() string { return "NN error predictor" }

// OverheadUs implements ErrorPredictor.
func (e *NNError) OverheadUs() float64 { return modelOverheadUs(e.net.NumParams()) }

// Accuracy returns the fraction of test samples whose predicted error is
// within tolMs of the true residual of sp (the paper reports 85%, Fig. 8b).
func (e *NNError) Accuracy(test []Sample, sp ServicePredictor, tolMs float64) float64 {
	return EvaluateError(e, sp, test, tolMs)
}

// MovingAvgError is Gemini-α's estimator (§VI-A): a moving average of the
// prediction-error magnitudes observed over the past window (60) request
// departures, plus StdFactor standard deviations of safety. It ignores
// features entirely — exactly the weakness the ablation exposes: because a
// population average "is unable to provide a measure of each request's
// precise residual work, the two-step DVFS has to boost the CPU frequency
// earlier to achieve a lower deadline violation rate" (§VI-D), which is
// where Gemini-α loses power relative to the per-query error NN.
type MovingAvgError struct {
	ma *stats.MovingAverage
	// StdFactor scales the safety term (1 by default).
	StdFactor float64
}

// NewMovingAvgError creates the estimator; the paper's window is 60.
func NewMovingAvgError(window int) *MovingAvgError {
	return &MovingAvgError{ma: stats.NewMovingAverage(window), StdFactor: 1}
}

// Observe records a completed request's error magnitude.
func (m *MovingAvgError) Observe(errMs float64) {
	if errMs < 0 {
		errMs = -errMs
	}
	m.ma.Add(errMs)
}

// PredictErrMs implements ErrorPredictor: mean + StdFactor·std of the
// window's error magnitudes.
func (m *MovingAvgError) PredictErrMs(search.FeatureVector) float64 {
	mean := m.ma.Mean()
	return mean + m.StdFactor*m.ma.Std()
}

// Name implements ErrorPredictor.
func (m *MovingAvgError) Name() string { return "moving-average error" }

// OverheadUs implements ErrorPredictor.
func (m *MovingAvgError) OverheadUs() float64 { return 0.5 }
