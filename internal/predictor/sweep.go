package predictor

import "gemini/internal/search"

// SweepPoint is one row of the Fig. 6 feature-importance sweep: the accuracy
// of a classifier trained on the first i+1 features of the order.
type SweepPoint struct {
	Feature  string  // feature added at this step
	Accuracy float64 // ±1 ms classification accuracy on the test set
}

// DefaultSweepOrder is the bottom-to-top feature-addition order of Fig. 6
// (all Table II features except Query_Length, which the figure omits).
func DefaultSweepOrder() []int {
	order := make([]int, 0, search.NumFeatures-1)
	for i := 0; i < search.NumFeatures-1; i++ {
		order = append(order, i)
	}
	return order
}

// FeatureSweep retrains the NN classifier with a growing feature subset and
// reports test accuracy after each addition — the reproduction of Fig. 6.
// Accuracy is the fraction of test samples predicted within ±1 ms.
func FeatureSweep(ds *Dataset, cfg Config, order []int) []SweepPoint {
	if order == nil {
		order = DefaultSweepOrder()
	}
	points := make([]SweepPoint, 0, len(order))
	for i := range order {
		cols := order[:i+1]
		clf := TrainClassifier(ds.Train, cols, cfg)
		acc := classifierAccuracy(clf, ds.Test, 1.0)
		points = append(points, SweepPoint{Feature: search.FeatureNames[order[i]], Accuracy: acc})
	}
	return points
}

// classifierAccuracy is the fraction of test samples with |prediction −
// measured| <= tolMs.
func classifierAccuracy(p ServicePredictor, test []Sample, tolMs float64) float64 {
	e := Evaluate(p, test, tolMs)
	return 1 - e.ErrorRate
}
