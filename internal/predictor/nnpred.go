package predictor

import (
	"sync"

	"gemini/internal/nn"
	"gemini/internal/search"
)

// inferScratch bundles the per-call buffers of one NN prediction: the raw
// feature projection, the scaled network input, and the forward-pass arena.
// Predictors keep these in a sync.Pool so PredictMs is allocation-free and
// safe to call from many goroutines at once (the trained networks and
// scalers are read-only at inference time).
type inferScratch struct {
	raw []float64
	in  []float64
	ar  *nn.Arena
}

// scratchPool amortizes inferScratch allocation for one trained network.
type scratchPool struct {
	pool sync.Pool
}

func (p *scratchPool) get(net *nn.Network) *inferScratch {
	if s, ok := p.pool.Get().(*inferScratch); ok {
		return s
	}
	in := net.InDim()
	return &inferScratch{raw: make([]float64, in), in: make([]float64, in), ar: net.NewArena()}
}

func (p *scratchPool) put(s *inferScratch) { p.pool.Put(s) }

// Config selects the architecture and training budget of the NN predictors.
type Config struct {
	Hidden    []int // hidden layer widths (relu)
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	MaxMs     int // classifier buckets cover [0, MaxMs] at 1 ms granularity
}

// PaperConfig reproduces the paper's architecture: 5 hidden layers of 128
// relu neurons, trained with Adam (§IV-A). Training this in pure Go takes
// tens of seconds; use DefaultConfig for interactive runs.
func PaperConfig() Config {
	return Config{Hidden: []int{128, 128, 128, 128, 128}, Epochs: 40, BatchSize: 32, LR: 1e-3, Seed: 1, MaxMs: 60}
}

// DefaultConfig is the scaled-down architecture used by the experiment
// harness: same shape (deep relu MLP + per-ms classifier head), sized so the
// whole predictor suite trains in a few seconds.
func DefaultConfig() Config {
	return Config{Hidden: []int{48, 48}, Epochs: 25, BatchSize: 32, LR: 2e-3, Seed: 1, MaxMs: 60}
}

// TestConfig is a minimal configuration for unit tests.
func TestConfig() Config {
	return Config{Hidden: []int{16}, Epochs: 8, BatchSize: 32, LR: 3e-3, Seed: 1, MaxMs: 60}
}

// NNClassifier is the paper's latency predictor: a relu MLP with one output
// neuron per millisecond bucket, trained with sparse categorical
// cross-entropy and Adam (§IV-A). Predictions return the bucket center.
// PredictMs/PredictClass are goroutine-safe: inference runs through the
// reentrant nn.Infer path with pooled scratch, so one trained classifier can
// be shared by every worker of the parallel experiment harness and by
// concurrent server handlers.
type NNClassifier struct {
	net     *nn.Network
	scaler  *nn.Scaler
	cols    []int // feature subset (nil = all); supports the Fig. 6 sweep
	maxMs   int
	scratch scratchPool
}

// TrainClassifier fits the classifier on the training samples using the
// feature columns in cols (nil means all Table II features).
func TrainClassifier(train []Sample, cols []int, cfg Config) *NNClassifier {
	X, Y := featureMatrix(train, cols)
	scaler := nn.FitScaler(X, logColumns(cols))
	Xs := scaler.TransformAll(X)
	classes := cfg.MaxMs + 1
	for i := range Y {
		Y[i] = float64(clampClass(Y[i], cfg.MaxMs))
	}
	net := nn.NewMLP(len(Xs[0]), cfg.Hidden, classes, cfg.Seed)
	tr := &nn.Trainer{
		Net: net, Loss: &nn.CrossEntropy{}, Opt: nn.NewAdam(cfg.LR),
		BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed + 100,
	}
	_, _ = tr.Fit(Xs, Y)
	return &NNClassifier{net: net, scaler: scaler, cols: cols, maxMs: cfg.MaxMs}
}

func clampClass(ms float64, maxMs int) int {
	c := int(ms)
	if c < 0 {
		c = 0
	}
	if c > maxMs {
		c = maxMs
	}
	return c
}

// project fills s.in with the scaled (and optionally column-projected)
// feature vector.
func (c *NNClassifier) project(fv search.FeatureVector, s *inferScratch) []float64 {
	if c.cols == nil {
		c.scaler.TransformInto(fv[:], s.in)
	} else {
		for j, col := range c.cols {
			s.raw[j] = fv[col]
		}
		c.scaler.TransformInto(s.raw[:len(c.cols)], s.in)
	}
	return s.in
}

// PredictMs implements ServicePredictor: the center of the argmax bucket.
func (c *NNClassifier) PredictMs(fv search.FeatureVector) float64 {
	s := c.scratch.get(c.net)
	v := float64(nn.Argmax(c.net.Infer(c.project(fv, s), s.ar))) + 0.5
	c.scratch.put(s)
	return v
}

// PredictClass returns the raw argmax bucket.
func (c *NNClassifier) PredictClass(fv search.FeatureVector) int {
	s := c.scratch.get(c.net)
	cls := nn.Argmax(c.net.Infer(c.project(fv, s), s.ar))
	c.scratch.put(s)
	return cls
}

// Name implements ServicePredictor.
func (c *NNClassifier) Name() string { return "NN classifier" }

// OverheadUs implements ServicePredictor.
func (c *NNClassifier) OverheadUs() float64 { return modelOverheadUs(c.net.NumParams()) }

// Network exposes the underlying model (for persistence).
func (c *NNClassifier) Network() *nn.Network { return c.net }

// NNRegressor is the Fig. 7 baseline: same MLP body with a single linear
// output trained on MSE with RMSprop (§IV-B). PredictMs is goroutine-safe.
type NNRegressor struct {
	net     *nn.Network
	scaler  *nn.Scaler
	scratch scratchPool
}

// TrainRegressor fits the regressor on all Table II features.
func TrainRegressor(train []Sample, cfg Config) *NNRegressor {
	X, Y := featureMatrix(train, nil)
	scaler := nn.FitScaler(X, logColumns(nil))
	Xs := scaler.TransformAll(X)
	net := nn.NewMLP(len(Xs[0]), cfg.Hidden, 1, cfg.Seed+1)
	tr := &nn.Trainer{
		Net: net, Loss: nn.MSE{}, Opt: nn.NewRMSprop(cfg.LR),
		BatchSize: cfg.BatchSize, Epochs: cfg.Epochs, Seed: cfg.Seed + 101,
	}
	_, _ = tr.Fit(Xs, Y)
	return &NNRegressor{net: net, scaler: scaler}
}

// PredictMs implements ServicePredictor.
func (r *NNRegressor) PredictMs(fv search.FeatureVector) float64 {
	s := r.scratch.get(r.net)
	r.scaler.TransformInto(fv[:], s.in)
	v := r.net.Infer(s.in, s.ar)[0]
	r.scratch.put(s)
	if v < 0 {
		v = 0
	}
	return v
}

// Name implements ServicePredictor.
func (r *NNRegressor) Name() string { return "NN regressor" }

// OverheadUs implements ServicePredictor.
func (r *NNRegressor) OverheadUs() float64 { return modelOverheadUs(r.net.NumParams()) }

// LinearClassifier is the Fig. 7 "simple linear classifier": multinomial
// logistic regression straight from features to per-ms buckets.
type LinearClassifier struct {
	inner *NNClassifier
}

// TrainLinear fits the linear classifier.
func TrainLinear(train []Sample, cfg Config) *LinearClassifier {
	linCfg := cfg
	linCfg.Hidden = nil
	return &LinearClassifier{inner: TrainClassifier(train, nil, linCfg)}
}

// PredictMs implements ServicePredictor.
func (l *LinearClassifier) PredictMs(fv search.FeatureVector) float64 {
	return l.inner.PredictMs(fv)
}

// Name implements ServicePredictor.
func (l *LinearClassifier) Name() string { return "Linear classifier" }

// OverheadUs implements ServicePredictor.
func (l *LinearClassifier) OverheadUs() float64 {
	return modelOverheadUs(l.inner.net.NumParams())
}
