package predictor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gemini/internal/corpus"
	"gemini/internal/index"
	"gemini/internal/search"
)

func indexFor(c *corpus.Corpus) *index.Index { return index.Build(c) }

// shared fixture: building the dataset executes thousands of queries, so do
// it once for the whole package.
var (
	fixtureDS      *Dataset
	fixtureBuilder *Builder
)

func dataset(t testing.TB) (*Dataset, *Builder) {
	t.Helper()
	if fixtureDS == nil {
		c := corpus.Generate(corpus.SmallSpec())
		eng := search.NewEngine(indexFor(c), search.DefaultK)
		cost := search.DefaultCostModel()
		gen := corpus.NewQueryGen(c, 11)
		sample := gen.Batch(200)
		cost.Calibrate(eng, sample, 5.0)
		fixtureBuilder = &Builder{
			Engine:    eng,
			Extractor: search.NewExtractor(eng),
			Cost:      cost,
			Jitter:    search.DefaultJitter(),
		}
		fixtureDS = fixtureBuilder.Build(gen.Batch(2500), 0.2, 42)
	}
	return fixtureDS, fixtureBuilder
}

func TestBuildDataset(t *testing.T) {
	ds, _ := dataset(t)
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatalf("empty split: %d/%d", len(ds.Train), len(ds.Test))
	}
	total := len(ds.Train) + len(ds.Test)
	if total != 2500 {
		t.Fatalf("total = %d", total)
	}
	frac := float64(len(ds.Test)) / float64(total)
	if math.Abs(frac-0.2) > 0.01 {
		t.Errorf("test fraction = %v", frac)
	}
	for _, s := range ds.Train[:50] {
		if s.MeasuredMs <= 0 {
			t.Fatalf("non-positive measured time %v", s.MeasuredMs)
		}
		if s.BaseWork <= 0 {
			t.Fatalf("non-positive base work")
		}
	}
}

func TestSampleJitterVaries(t *testing.T) {
	_, b := dataset(t)
	rng := rand.New(rand.NewSource(3))
	q := corpus.Query{Terms: []corpus.TermID{0}}
	a := b.Sample(q, rng)
	c := b.Sample(q, rng)
	if a.MeasuredMs == c.MeasuredMs {
		t.Errorf("two executions measured identically: %v", a.MeasuredMs)
	}
	if a.BaseWork != c.BaseWork {
		t.Errorf("base work should be deterministic: %v vs %v", a.BaseWork, c.BaseWork)
	}
}

func TestNNClassifierLearns(t *testing.T) {
	ds, _ := dataset(t)
	clf := TrainClassifier(ds.Train, nil, TestConfig())
	ev := Evaluate(clf, ds.Test, 1.0)
	if ev.ErrorRate > 0.5 {
		t.Errorf("classifier ±1ms error rate = %.2f, want < 0.5", ev.ErrorRate)
	}
	if ev.MAEMs > 3 {
		t.Errorf("classifier MAE = %.2f ms", ev.MAEMs)
	}
	if ev.OverheadUs <= overheadBaseUs {
		t.Errorf("overhead = %v", ev.OverheadUs)
	}
	if clf.Name() == "" || clf.Network() == nil {
		t.Error("metadata missing")
	}
}

func TestClassifierPredictionsInRange(t *testing.T) {
	ds, _ := dataset(t)
	clf := TrainClassifier(ds.Train, nil, TestConfig())
	for _, s := range ds.Test {
		p := clf.PredictMs(s.Features)
		if p < 0 || p > float64(TestConfig().MaxMs)+1 {
			t.Fatalf("prediction %v out of range", p)
		}
		cls := clf.PredictClass(s.Features)
		if math.Abs(p-(float64(cls)+0.5)) > 1e-9 {
			t.Fatalf("PredictMs %v inconsistent with class %d", p, cls)
		}
	}
}

func TestNNRegressor(t *testing.T) {
	ds, _ := dataset(t)
	reg := TrainRegressor(ds.Train, TestConfig())
	ev := Evaluate(reg, ds.Test, 4.0) // paper uses a 4 ms threshold for the regressor
	if ev.ErrorRate > 0.6 {
		t.Errorf("regressor ±4ms error rate = %.2f", ev.ErrorRate)
	}
	for _, s := range ds.Test[:20] {
		if reg.PredictMs(s.Features) < 0 {
			t.Fatalf("negative prediction")
		}
	}
	if reg.Name() == "" {
		t.Error("missing name")
	}
}

func TestLinearClassifier(t *testing.T) {
	ds, _ := dataset(t)
	lin := TrainLinear(ds.Train, TestConfig())
	ev := Evaluate(lin, ds.Test, 1.0)
	if ev.ErrorRate < 0 || ev.ErrorRate > 1 {
		t.Fatalf("error rate = %v", ev.ErrorRate)
	}
	if lin.OverheadUs() >= TrainClassifier(ds.Train, nil, TestConfig()).OverheadUs() {
		t.Errorf("linear model should have lower modeled overhead than the MLP")
	}
}

// Fig. 7 shape: the NN classifier must beat the linear model on the ±1 ms
// metric, and overheads must order linear < regressor ≈ classifier.
func TestModelComparisonShape(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	clf := TrainClassifier(ds.Train, nil, cfg)
	lin := TrainLinear(ds.Train, cfg)
	evC := Evaluate(clf, ds.Test, 1.0)
	evL := Evaluate(lin, ds.Test, 1.0)
	if evC.ErrorRate >= evL.ErrorRate {
		t.Errorf("NN classifier (%.2f) not better than linear (%.2f)", evC.ErrorRate, evL.ErrorRate)
	}
	if lin.OverheadUs() >= clf.OverheadUs() {
		t.Errorf("overhead ordering violated: linear %v >= classifier %v", lin.OverheadUs(), clf.OverheadUs())
	}
}

func TestPercentilePredictor(t *testing.T) {
	ds, _ := dataset(t)
	p := NewPercentile(ds.Train, 95)
	if p.ValueMs <= 0 {
		t.Fatalf("p95 = %v", p.ValueMs)
	}
	// Must be conservative: at least ~95% of training times below it.
	below := 0
	for _, s := range ds.Train {
		if s.MeasuredMs <= p.ValueMs {
			below++
		}
	}
	frac := float64(below) / float64(len(ds.Train))
	if frac < 0.93 {
		t.Errorf("only %.2f of train below p95", frac)
	}
	var fv search.FeatureVector
	if p.PredictMs(fv) != p.ValueMs {
		t.Error("percentile prediction not constant")
	}
	if p.OverheadUs() > 5 {
		t.Error("percentile lookup should be nearly free")
	}
}

func TestPercentileEmpty(t *testing.T) {
	p := NewPercentile(nil, 95)
	if p.ValueMs != 0 {
		t.Errorf("empty percentile = %v", p.ValueMs)
	}
}

func TestErrClassRoundTrip(t *testing.T) {
	cases := []struct {
		e    float64
		want int
	}{
		{0, errRangeMs}, {1, errRangeMs + 1}, {-1, errRangeMs - 1},
		{0.4, errRangeMs}, {-0.4, errRangeMs},
		{100, 2 * errRangeMs}, {-100, 0},
	}
	for _, c := range cases {
		if got := errClass(c.e); got != c.want {
			t.Errorf("errClass(%v) = %d, want %d", c.e, got, c.want)
		}
	}
	if classToErr(errRangeMs) != 0 {
		t.Errorf("classToErr center = %v", classToErr(errRangeMs))
	}
}

func TestNNErrorPredictor(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	clf := TrainClassifier(ds.Train, nil, cfg)
	ep := TrainError(ds.Train, clf, cfg)
	acc := ep.Accuracy(ds.Test, clf, 1.0)
	if acc < 0.4 {
		t.Errorf("error predictor ±1ms accuracy = %.2f, want >= 0.4", acc)
	}
	if ep.Name() == "" || ep.OverheadUs() <= 0 {
		t.Error("metadata missing")
	}
	// Error predictions stay within the bucket range.
	for _, s := range ds.Test[:50] {
		e := ep.PredictErrMs(s.Features)
		if e < -errRangeMs || e > errRangeMs {
			t.Fatalf("error prediction %v out of range", e)
		}
	}
}

// The error predictor must beat the moving average at tracking residuals —
// the mechanism behind Gemini outperforming Gemini-α (paper §VI-D).
func TestErrorPredictorBeatsMovingAverage(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	clf := TrainClassifier(ds.Train, nil, cfg)
	ep := TrainError(ds.Train, clf, cfg)

	ma := NewMovingAvgError(60)
	maHits, nnHits := 0, 0
	for _, s := range ds.Test {
		trueErr := s.MeasuredMs - clf.PredictMs(s.Features)
		if math.Abs(ma.PredictErrMs(s.Features)-trueErr) <= 1 {
			maHits++
		}
		if math.Abs(ep.PredictErrMs(s.Features)-trueErr) <= 1 {
			nnHits++
		}
		ma.Observe(trueErr)
	}
	if nnHits <= maHits {
		t.Errorf("NN error predictor (%d hits) not better than moving average (%d hits)", nnHits, maHits)
	}
}

func TestMovingAvgErrorObserve(t *testing.T) {
	ma := NewMovingAvgError(3)
	var fv search.FeatureVector
	if ma.PredictErrMs(fv) != 0 {
		t.Error("empty moving average should predict 0")
	}
	ma.Observe(3)
	ma.Observe(-6) // magnitudes: |−6| = 6
	// mean 4.5 + 1·std 1.5 = 6 (conservative population slack).
	if got := ma.PredictErrMs(fv); math.Abs(got-6) > 1e-12 {
		t.Errorf("moving avg estimate = %v, want 6", got)
	}
}

func TestZeroError(t *testing.T) {
	var z ZeroError
	var fv search.FeatureVector
	if z.PredictErrMs(fv) != 0 || z.Name() == "" {
		t.Error("ZeroError misbehaves")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	p := &Percentile95{ValueMs: 5}
	ev := Evaluate(p, nil, 1)
	if ev.ErrorRate != 0 || ev.Model == "" {
		t.Errorf("empty eval: %+v", ev)
	}
	if EvaluateError(ZeroError{}, p, nil, 1) != 0 {
		t.Error("empty error eval")
	}
}

func TestFeatureSweepImproves(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	cfg.Epochs = 6
	// Use a short prefix of the order to keep the test fast.
	order := DefaultSweepOrder()[:5]
	pts := FeatureSweep(ds, cfg, order)
	if len(pts) != 5 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v out of range", p.Accuracy)
		}
		if p.Feature == "" {
			t.Fatal("missing feature name")
		}
	}
	if pts[len(pts)-1].Accuracy+0.10 < pts[0].Accuracy {
		t.Errorf("adding features badly degraded accuracy: %v -> %v", pts[0].Accuracy, pts[len(pts)-1].Accuracy)
	}
}

func TestDefaultSweepOrderExcludesQueryLength(t *testing.T) {
	order := DefaultSweepOrder()
	if len(order) != search.NumFeatures-1 {
		t.Fatalf("order len = %d", len(order))
	}
	for _, c := range order {
		if c == search.FeatQueryLength {
			t.Error("query length should not be in the Fig. 6 sweep")
		}
	}
}

func TestConfigPresets(t *testing.T) {
	p := PaperConfig()
	if len(p.Hidden) != 5 || p.Hidden[0] != 128 {
		t.Errorf("paper config = %+v", p)
	}
	d := DefaultConfig()
	if d.MaxMs != 60 || d.Epochs <= 0 {
		t.Errorf("default config = %+v", d)
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	ds, _ := dataset(t)
	clf := TrainClassifier(ds.Train, nil, TestConfig())
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Test[:100] {
		if clf.PredictMs(s.Features) != loaded.PredictMs(s.Features) {
			t.Fatalf("prediction differs after round trip")
		}
	}
}

func TestClassifierSaveLoadFile(t *testing.T) {
	ds, _ := dataset(t)
	clf := TrainClassifier(ds.Train, nil, TestConfig())
	path := t.TempDir() + "/clf.gob"
	if err := clf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifierFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Test[0]
	if clf.PredictMs(s.Features) != loaded.PredictMs(s.Features) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadClassifierFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestClassifierSubsetColsRoundTrip(t *testing.T) {
	ds, _ := dataset(t)
	cols := []int{search.FeatPostingListLength, search.FeatIDF, search.FeatMaxScore}
	clf := TrainClassifier(ds.Train, cols, TestConfig())
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Test[1]
	if clf.PredictMs(s.Features) != loaded.PredictMs(s.Features) {
		t.Error("subset-column round trip mismatch")
	}
}

func TestLoadClassifierRejectsGarbage(t *testing.T) {
	if _, err := LoadClassifier(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestErrorPredictorSaveLoad(t *testing.T) {
	ds, _ := dataset(t)
	cfg := TestConfig()
	clf := TrainClassifier(ds.Train, nil, cfg)
	ep := TrainError(ds.Train, clf, cfg)
	var buf bytes.Buffer
	if err := ep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadError(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds.Test[:50] {
		if ep.PredictErrMs(s.Features) != loaded.PredictErrMs(s.Features) {
			t.Fatal("error prediction differs after round trip")
		}
	}
	if _, err := LoadError(bytes.NewReader(nil)); err == nil {
		t.Error("empty error model accepted")
	}
}
