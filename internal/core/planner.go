// Package core implements Gemini's contribution: the heuristic one-or-two
// step DVFS planner of paper §III. Given a query's predicted service time S*
// (eq. 1) and predicted prediction-error E* (eq. 6), it selects the initial
// frequency (eq. 5), the boost time at which the core jumps to the maximum
// frequency to catch up with the deadline (eq. 7), the critical-request test
// under queueing (eq. 8), and the shared group frequency and boost time for
// the general N-request case (eqs. 12–15). The planner is pure math — the
// sim package executes its plans, the policy package decides when to invoke
// it.
package core

import (
	"math"

	"gemini/internal/cpu"
)

// Params fixes the platform constants of the planner.
type Params struct {
	// FDefault is the default = maximum = boosted frequency f_b.
	FDefault cpu.Freq
	// TdvfsMs is the transition stall charged around every frequency switch.
	TdvfsMs float64
	// Ladder quantizes requested frequencies (continuous solutions are
	// rounded up so a plan never runs slower than its math assumed).
	Ladder *cpu.Ladder
	// MarginMs is a small safety margin: plans target finishing the
	// budgeted work this long before the real deadline, so that residual
	// noise beyond the predicted error (which the boost step budgets for)
	// does not tip a just-in-time request over the budget.
	MarginMs float64
}

// DefaultParams returns the evaluation platform's planner parameters.
func DefaultParams() Params {
	return Params{FDefault: cpu.FDefault, TdvfsMs: cpu.TdvfsMs, Ladder: cpu.DefaultLadder(), MarginMs: 1.5}
}

// Plan is a two-step frequency schedule for the core.
type Plan struct {
	// Initial is the first-step frequency (already ladder-quantized).
	Initial cpu.Freq
	// BoostAt is the absolute time of the second step; +Inf when no boost
	// is needed (the first step alone meets the budgeted work).
	BoostAt float64
	// Boost is the second-step frequency (always FDefault, the maximum).
	Boost cpu.Freq
	// Drop reports that even boosting immediately cannot meet the deadline,
	// so the request should be dropped to save energy (§III-A).
	Drop bool
}

// HasBoost reports whether the plan schedules a second step.
func (p Plan) HasBoost() bool { return !math.IsInf(p.BoostAt, 1) && !p.Drop }

// budgetedMs returns the conservative service-time estimate S* + E* the
// planner must fit before the deadline, floored so that pathological
// negative error predictions cannot collapse the budget.
func budgetedMs(predMs, predErrMs float64) float64 {
	b := predMs + predErrMs
	if min := 0.2 * predMs; b < min {
		b = min
	}
	if b < 0.1 {
		b = 0.1
	}
	return b
}

// PlanSingle computes the two-step plan for a request that begins executing
// at startMs with the given absolute deadline — paper §III-A. predMs is the
// NN-predicted service time at FDefault (S*), predErrMs the predicted error
// (E*, signed; the sum S*+E* approximates the actual service time).
func (pp Params) PlanSingle(startMs, deadlineMs, predMs, predErrMs float64) Plan {
	fdef := float64(pp.FDefault)
	available := deadlineMs - startMs
	budget := budgetedMs(predMs, predErrMs)
	// Plans aim at the margin-adjusted deadline; the drop rule uses the real
	// one (a request is only abandoned when truly infeasible).
	planD := deadlineMs - pp.MarginMs

	// Drop rule: boosting immediately means running at FDefault for the
	// whole residual window; if even that cannot fit the budgeted work, the
	// response would be discarded by the aggregator anyway.
	if budget > available {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1), Drop: true}
	}

	// Eq. 5: f_1a = S*·f_default / (D − A).
	window := planD - startMs
	if window <= 0 {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	raw := predMs * fdef / window
	// Quantize DOWN: the boost step exists precisely so the first step can
	// run below the continuous solution and catch up later — rounding up
	// would hand the quantization headroom to the hardware instead of
	// harvesting it (then the boost step would almost never engage).
	initial := pp.Ladder.ClampDown(cpu.Freq(raw))
	if raw >= fdef || initial >= pp.FDefault {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	boostAt := pp.solveBoost(float64(initial), startMs, planD, cpu.Work(budget*fdef))
	if boostAt <= startMs+pp.TdvfsMs {
		// Worst case: boost right away (T_1 = A_1). A boost landing inside
		// the initial transition stall collapses to the same single step.
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	if boostAt >= planD-pp.TdvfsMs {
		// The first step alone completes the budgeted work in time.
		return Plan{Initial: initial, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	return Plan{Initial: initial, Boost: pp.FDefault, BoostAt: boostAt}
}

// solveBoost solves eq. 7 / eq. 15 for the boost time T:
//
//	f_a·(T − t0) + f_default·(D − T − Tdvfs) = W
//
// where W is the budgeted work in GHz·ms and t0 the time the first step
// begins. A result ≤ t0 means "boost immediately"; ≥ D means "no boost".
func (pp Params) solveBoost(fa, t0, deadline float64, w cpu.Work) float64 {
	fdef := float64(pp.FDefault)
	den := fa - fdef
	if den >= 0 {
		return math.Inf(1) // already at (or above) the boost frequency
	}
	// Derivation: fa·(T − t0 − Tdvfs) + fdef·(D − T − Tdvfs) = W, charging
	// the first Tdvfs to the initial transition and the second to the boost,
	// gives T·(fa − fdef) = W + fa·(t0 + Tdvfs) − fdef·(D − Tdvfs).
	num := float64(w) + fa*(t0+pp.TdvfsMs) - fdef*(deadline-pp.TdvfsMs)
	return num / den
}

// IsCritical implements eq. 8: a newly arrived request R_N is critical when
// the window between the previous request's deadline and its own cannot hold
// its budgeted work even at the boosted frequency f_b = FDefault:
//
//	(D_N − D_{N−1})·f_b < (S*_N + E*_N)·f_default
//
// With f_b = f_default the frequencies cancel into a pure time comparison.
func (pp Params) IsCritical(prevDeadlineMs, deadlineMs, predMs, predErrMs float64) bool {
	return deadlineMs-prevDeadlineMs < budgetedMs(predMs, predErrMs)
}

// QueuedEstimate is the planner's view of one queued request for equivalent-
// work computation.
type QueuedEstimate struct {
	PredMs    float64
	PredErrMs float64
}

// EquivalentWork implements eq. 12: the residual work of the executing
// request plus the budgeted work (S*+E*) of every queued request in between,
// plus the critical request's own predicted work S*_N·f_default.
func (pp Params) EquivalentWork(headResidual cpu.Work, between []QueuedEstimate, predNMs float64) cpu.Work {
	fdef := float64(pp.FDefault)
	w := float64(headResidual)
	for _, q := range between {
		w += budgetedMs(q.PredMs, q.PredErrMs) * fdef
	}
	w += predNMs * fdef
	return cpu.Work(w)
}

// HeadResidual implements eq. 13 against observed progress: the budgeted
// work of the executing request minus what it has already executed, floored
// at zero (a request running longer than predicted has unknown residual; the
// boost step is what protects it).
func (pp Params) HeadResidual(predMs, predErrMs float64, done cpu.Work) cpu.Work {
	w := cpu.Work(budgetedMs(predMs, predErrMs)*float64(pp.FDefault)) - done
	if w < 0 {
		w = 0
	}
	return w
}

// PlanGroup implements eqs. 14–15: on arrival of a critical request R_N at
// nowMs with the given deadline, pick the single shared frequency
// f'_1b = f_2a = … = f_Na for the whole group and the boost time T_N.
// eW is the equivalent work of eq. 12 and predErrNMs the critical request's
// predicted error E*_N (eq. 15 budgets it on top of eW).
func (pp Params) PlanGroup(nowMs, deadlineMs float64, eW cpu.Work, predErrNMs float64) Plan {
	fdef := float64(pp.FDefault)
	window := deadlineMs - nowMs - pp.TdvfsMs

	// Drop rule: even FDefault for the whole window cannot finish. The real
	// deadline is used here — margin never makes a request droppable.
	if window <= 0 || float64(eW) > fdef*window {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1), Drop: true}
	}

	planD := deadlineMs - pp.MarginMs
	planWindow := planD - nowMs - pp.TdvfsMs
	if planWindow <= 0 {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}

	// Eq. 14: f_Na = eW / (D_N − A_N − Tdvfs), quantized down (the boost
	// step catches up, as in PlanSingle).
	raw := float64(eW) / planWindow
	initial := pp.Ladder.ClampDown(cpu.Freq(raw))
	if raw >= fdef || initial >= pp.FDefault {
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}

	// Eq. 15 budgets eW plus the critical request's own error slack.
	slack := predErrNMs
	if slack < 0 {
		slack = 0
	}
	budgetW := eW + cpu.Work(slack*fdef)
	boostAt := pp.solveBoost(float64(initial), nowMs, planD, budgetW)
	if boostAt <= nowMs+pp.TdvfsMs {
		// Boost-immediately, including the degenerate case where the boost
		// would land inside the initial transition stall.
		return Plan{Initial: pp.FDefault, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	if boostAt >= planD-pp.TdvfsMs {
		return Plan{Initial: initial, Boost: pp.FDefault, BoostAt: math.Inf(1)}
	}
	return Plan{Initial: initial, Boost: pp.FDefault, BoostAt: boostAt}
}

// WorkByDeadline integrates the work a plan completes between startMs and
// the deadline, charging Tdvfs around each transition the way the simulator
// does: used by tests to verify plans cover their budgeted work, and by the
// policy to sanity-check group feasibility.
func (pp Params) WorkByDeadline(p Plan, startMs, deadlineMs float64, startFreqDiffers bool) cpu.Work {
	if p.Drop {
		return 0
	}
	t := startMs
	if startFreqDiffers {
		t += pp.TdvfsMs
	}
	var w float64
	if p.HasBoost() && p.BoostAt < deadlineMs {
		if p.BoostAt > t {
			w += (p.BoostAt - t) * float64(p.Initial)
			t = p.BoostAt
		}
		t += pp.TdvfsMs // boost transition stall
		if deadlineMs > t {
			w += (deadlineMs - t) * float64(p.Boost)
		}
		return cpu.Work(w)
	}
	if deadlineMs > t {
		w += (deadlineMs - t) * float64(p.Initial)
	}
	return cpu.Work(w)
}
