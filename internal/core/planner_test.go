package core

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/cpu"
)

func params() Params { return DefaultParams() }

func TestPlanSingleAccuratePrediction(t *testing.T) {
	pp := params()
	// 21 ms predicted, no error, 38.5 ms planning window: continuous
	// optimum 1.47 GHz quantizes DOWN to 1.4 — the boost step catches up.
	p := pp.PlanSingle(0, 40, 21, 0)
	if p.Drop {
		t.Fatal("dropped")
	}
	if p.Initial != 1.4 {
		t.Errorf("initial = %v, want 1.4", p.Initial)
	}
	if !p.HasBoost() {
		t.Fatalf("quantizing down requires a boost step: %+v", p)
	}
	// The plan covers the 21 ms budget by the deadline.
	got := pp.WorkByDeadline(p, 0, 40, true)
	if float64(got) < 21*float64(cpu.FDefault)-1e-6 {
		t.Errorf("work by deadline = %v", got)
	}
}

func TestPlanSingleWithErrorSlackBoosts(t *testing.T) {
	pp := params()
	p := pp.PlanSingle(0, 40, 20, 2)
	if p.Drop || !p.HasBoost() {
		t.Fatalf("plan = %+v, want a boost step", p)
	}
	// raw = 20*2.7/38.5 = 1.40 -> clamp down to 1.4.
	if p.Initial != 1.4 || p.Boost != cpu.FDefault {
		t.Errorf("freqs = %v/%v", p.Initial, p.Boost)
	}
	if p.BoostAt <= 0 || p.BoostAt >= 40 {
		t.Errorf("boost at %v", p.BoostAt)
	}
	// The plan must complete the budgeted 22 ms of FDefault-work by D.
	got := pp.WorkByDeadline(p, 0, 40, true)
	want := cpu.Work(22 * float64(cpu.FDefault))
	if float64(got) < float64(want)-1e-6 {
		t.Errorf("work by deadline = %v, want >= %v", got, want)
	}
}

func TestPlanSingleShortRequestRunsSlow(t *testing.T) {
	pp := params()
	// 2 ms predicted in a 40 ms window: bottom frequency, likely no boost.
	p := pp.PlanSingle(0, 40, 2, 0.5)
	if p.Drop {
		t.Fatal("dropped")
	}
	if p.Initial != pp.Ladder.Min() {
		t.Errorf("initial = %v, want ladder min", p.Initial)
	}
	if p.HasBoost() {
		t.Errorf("short request should not need a boost: %+v", p)
	}
}

func TestPlanSingleTightDeadlineBoostsImmediately(t *testing.T) {
	pp := params()
	// 38 ms predicted + 1.5 error in a 40 ms window: initial raw frequency
	// 2.565 clamps to 2.7 — one step at max.
	p := pp.PlanSingle(0, 40, 38, 1.5)
	if p.Drop {
		t.Fatal("dropped")
	}
	if p.Initial != cpu.FDefault || p.HasBoost() {
		t.Errorf("plan = %+v, want single max step", p)
	}
}

func TestPlanSingleImpossibleDrops(t *testing.T) {
	pp := params()
	p := pp.PlanSingle(0, 40, 45, 0)
	if !p.Drop {
		t.Errorf("45 ms predicted in 40 ms window must drop: %+v", p)
	}
	p = pp.PlanSingle(30, 40, 15, 2)
	if !p.Drop {
		t.Errorf("late start must drop: %+v", p)
	}
}

func TestBudgetFloorsNegativeError(t *testing.T) {
	pp := params()
	// A hugely negative predicted error cannot shrink the budget below 20%
	// of the prediction.
	p := pp.PlanSingle(0, 40, 20, -100)
	if p.Drop {
		t.Fatal("dropped")
	}
	if p.Initial != 1.4 {
		t.Errorf("initial = %v (eq. 5 ignores E*)", p.Initial)
	}
}

func TestIsCritical(t *testing.T) {
	pp := params()
	// Previous deadline 100, new deadline 140: window 40 ms.
	if pp.IsCritical(100, 140, 20, 2) {
		t.Error("22 ms budget fits a 40 ms window")
	}
	if !pp.IsCritical(100, 140, 39, 2) {
		t.Error("41 ms budget cannot fit a 40 ms window")
	}
	// Boundary: equal means non-critical (strict inequality in eq. 8).
	if pp.IsCritical(100, 140, 40, 0) {
		t.Error("exactly fitting budget is not critical")
	}
}

func TestEquivalentWork(t *testing.T) {
	pp := params()
	between := []QueuedEstimate{{PredMs: 5, PredErrMs: 1}, {PredMs: 3, PredErrMs: 0}}
	eW := pp.EquivalentWork(cpu.Work(10), between, 7)
	want := 10 + (6+3+7)*float64(cpu.FDefault)
	if math.Abs(float64(eW)-want) > 1e-9 {
		t.Errorf("eW = %v, want %v", eW, want)
	}
}

func TestHeadResidual(t *testing.T) {
	pp := params()
	r := pp.HeadResidual(10, 1, cpu.Work(13.5))
	want := 11*float64(cpu.FDefault) - 13.5
	if math.Abs(float64(r)-want) > 1e-9 {
		t.Errorf("residual = %v, want %v", r, want)
	}
	// Overrun clamps to zero.
	if pp.HeadResidual(10, 0, cpu.Work(1000)) != 0 {
		t.Error("overrun residual not clamped")
	}
}

func TestPlanGroup(t *testing.T) {
	pp := params()
	// 69.8 GHz·ms of equivalent work in a 35 ms window: with the 1 ms
	// planning margin the effective window is 33.95 ms, so the raw 2.06 GHz
	// quantizes down to 2.0; the error slack forces a boost step.
	p := pp.PlanGroup(0, 35, cpu.Work(69.8), 2)
	if p.Drop {
		t.Fatal("dropped")
	}
	if p.Initial != 2.0 {
		t.Errorf("group freq = %v, want 2.0", p.Initial)
	}
	if !p.HasBoost() {
		t.Fatalf("want a boost step: %+v", p)
	}
	// Work by deadline must cover eW + E*·fdef.
	got := pp.WorkByDeadline(p, 0, 35, true)
	want := 69.8 + 2*float64(cpu.FDefault)
	if float64(got) < want-1e-6 {
		t.Errorf("work = %v, want >= %v", got, want)
	}
}

func TestPlanGroupDrop(t *testing.T) {
	pp := params()
	p := pp.PlanGroup(0, 35, cpu.Work(35*2.7+1), 0)
	if !p.Drop {
		t.Errorf("infeasible group must drop: %+v", p)
	}
	if !pp.PlanGroup(40, 35, cpu.Work(1), 0).Drop {
		t.Error("negative window must drop")
	}
}

func TestPlanGroupNegativeErrorIgnored(t *testing.T) {
	pp := params()
	a := pp.PlanGroup(0, 35, cpu.Work(60), 0)
	b := pp.PlanGroup(0, 35, cpu.Work(60), -5)
	if a.BoostAt != b.BoostAt {
		t.Errorf("negative E* changed the group boost: %v vs %v", a.BoostAt, b.BoostAt)
	}
}

// Property: whenever PlanSingle does not drop, executing the plan completes
// the budgeted work (S*+E* at FDefault) by the deadline — the paper's
// deadline guarantee under correct error bounds.
func TestPlanSingleDeadlineGuaranteeProperty(t *testing.T) {
	pp := params()
	f := func(predRaw, errRaw, windowRaw uint16) bool {
		pred := float64(predRaw%400)/10 + 0.5   // 0.5..40.5 ms
		errMs := float64(errRaw%100)/10 - 3     // -3..+7 ms
		window := float64(windowRaw%500)/10 + 5 // 5..55 ms
		p := pp.PlanSingle(0, window, pred, errMs)
		if p.Drop {
			// Drop must only happen when the budget truly exceeds the window.
			return budgetedMs(pred, errMs) > window
		}
		got := pp.WorkByDeadline(p, 0, window, p.Initial != cpu.FDefault)
		want := budgetedMs(pred, errMs) * float64(cpu.FDefault)
		return float64(got) >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the group plan covers eW + max(E*,0)·fdef by the deadline.
func TestPlanGroupDeadlineGuaranteeProperty(t *testing.T) {
	pp := params()
	f := func(ewRaw, errRaw, windowRaw uint16) bool {
		eW := cpu.Work(float64(ewRaw%1200)/10 + 1) // 1..121 GHz·ms
		errMs := float64(errRaw%80)/10 - 2         // -2..+6
		window := float64(windowRaw%600)/10 + 5    // 5..65 ms
		p := pp.PlanGroup(0, window, eW, errMs)
		if p.Drop {
			return float64(eW) > float64(cpu.FDefault)*(window-pp.TdvfsMs)
		}
		got := pp.WorkByDeadline(p, 0, window, p.Initial != cpu.FDefault)
		slack := errMs
		if slack < 0 {
			slack = 0
		}
		want := float64(eW) + slack*float64(cpu.FDefault)
		// The boost-immediately edge (BoostAt <= now -> single max step) can
		// under-cover by at most the budgeted slack when the window is
		// already too tight for two steps; the drop rule catches true
		// infeasibility, so allow the slack margin there.
		if p.Initial == cpu.FDefault {
			want = float64(eW)
		}
		return float64(got) >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: initial frequency is monotone in predicted service time.
func TestInitialFreqMonotoneProperty(t *testing.T) {
	pp := params()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%400)/10 + 0.1
		b := float64(bRaw%400)/10 + 0.1
		if a > b {
			a, b = b, a
		}
		pa := pp.PlanSingle(0, 40, a, 0)
		pb := pp.PlanSingle(0, 40, b, 0)
		if pa.Drop || pb.Drop {
			return true
		}
		return pa.Initial <= pb.Initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestWorkByDeadlineDropIsZero(t *testing.T) {
	pp := params()
	p := Plan{Drop: true}
	if pp.WorkByDeadline(p, 0, 40, true) != 0 {
		t.Error("dropped plan should do no work")
	}
}

func TestHasBoost(t *testing.T) {
	if (Plan{BoostAt: math.Inf(1)}).HasBoost() {
		t.Error("no-boost plan reports boost")
	}
	if !(Plan{BoostAt: 10}).HasBoost() {
		t.Error("boost plan not reported")
	}
	if (Plan{BoostAt: 10, Drop: true}).HasBoost() {
		t.Error("dropped plan reports boost")
	}
}

func TestSolveBoostAtOrAboveDefault(t *testing.T) {
	pp := params()
	// fa >= fdefault: no boost can help; solveBoost reports +Inf.
	if got := pp.solveBoost(2.7, 0, 40, 100); !math.IsInf(got, 1) {
		t.Errorf("solveBoost(fdef) = %v, want +Inf", got)
	}
	if got := pp.solveBoost(3.0, 0, 40, 100); !math.IsInf(got, 1) {
		t.Errorf("solveBoost(>fdef) = %v, want +Inf", got)
	}
}

func TestWorkByDeadlineBoostAfterDeadline(t *testing.T) {
	pp := params()
	// A boost scheduled past the deadline contributes nothing extra.
	p := Plan{Initial: 1.4, Boost: cpu.FDefault, BoostAt: 50}
	got := pp.WorkByDeadline(p, 0, 40, false)
	want := cpu.Work(40 * 1.4)
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("work = %v, want %v", got, want)
	}
}

func TestBudgetedFloor(t *testing.T) {
	// Tiny predictions floor at 0.1 ms.
	if b := budgetedMs(0.01, 0); b != 0.1 {
		t.Errorf("budget = %v, want floor 0.1", b)
	}
	if b := budgetedMs(10, -9.99); math.Abs(b-2) > 1e-12 {
		t.Errorf("budget = %v, want 20%% floor = 2", b)
	}
}

func TestPlanSingleZeroWindow(t *testing.T) {
	pp := params()
	// Start exactly at the deadline: must drop (no time at all).
	p := pp.PlanSingle(40, 40, 5, 0)
	if !p.Drop {
		t.Errorf("zero window not dropped: %+v", p)
	}
	// Start inside the margin but before the deadline with a tiny budget:
	// single max step, no boost, no drop.
	p = pp.PlanSingle(39.9, 40, 0.01, 0)
	if p.Drop || p.HasBoost() || p.Initial != cpu.FDefault {
		t.Errorf("margin-edge plan = %+v", p)
	}
}
