// Command geminivet is the driver for the gemini lint suite
// (internal/lint): nodeterminism, hotpath, unitsafety, freqdomain,
// locksafety, metricsconv, timertag — plus the suite-level stale-suppression
// audit (an //gemini:allow that suppresses nothing is itself an error).
//
// It speaks go vet's vettool protocol, so the usual invocation is
//
//	go build -o bin/geminivet ./cmd/geminivet
//	go vet -vettool=$PWD/bin/geminivet ./...
//
// in which mode cmd/go calls it once per package with a vet.cfg describing
// the compiled package (file list, import map, export data), exactly like
// golang.org/x/tools' unitchecker — re-implemented here on the standard
// library because the build image has no module proxy. Cross-package facts
// (the timertag reserved-constant inventory) travel between invocations as
// JSON in the protocol's vetx files: each run decodes the vetx of its
// dependencies and encodes its own package's facts into VetxOutput.
//
// It also runs standalone, loading packages from source:
//
//	geminivet ./...
//	geminivet -hotpath ./internal/sim ./internal/cpu
//	geminivet -fix ./...
//	geminivet -json ./... >vet.json
//	geminivet -sarif=vet.sarif ./...
//
// Per-analyzer boolean flags select a subset; with none set, the full suite
// runs. Diagnostics go to stderr as file:line:col: messages; the exit status
// is 2 when any diagnostic is reported, matching go vet. Standalone-only
// output modes: -fix applies each diagnostic's first suggested fix in place;
// -json and -sarif write machine-readable reports ("-" or an empty value
// means stdout) — the SARIF form is what CI uploads for inline PR
// annotations.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gemini/internal/lint"
	"gemini/internal/lint/analysis"
	"gemini/internal/lint/load"
	"gemini/internal/lint/report"
)

func main() {
	os.Exit(run())
}

// enabled maps analyzer name to its selection flag.
var enabled = map[string]*bool{}

var (
	fixFlag   = flag.Bool("fix", false, "apply each diagnostic's first suggested fix to the source (standalone mode)")
	jsonFlag  = flag.String("json", "", "write diagnostics as JSON to `file` (\"-\" for stdout; standalone mode)")
	sarifFlag = flag.String("sarif", "", "write diagnostics as SARIF 2.1.0 to `file` (\"-\" for stdout; standalone mode)")
)

func run() int {
	flag.Usage = usage
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the go command's cache key)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, false, firstLine(a.Doc))
	}
	flag.Parse()

	if *printFlags {
		emitFlagDefs()
		return 0
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnitchecker(args[0])
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	return runStandalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: geminivet [flags] <packages>|<vet.cfg>

Output modes (standalone):
  -fix          apply suggested fixes in place
  -json FILE    machine-readable JSON report ("-" = stdout)
  -sarif FILE   SARIF 2.1.0 report for CI annotation upload ("-" = stdout)

Analyzers (none selected = full suite, plus the stale //gemini:allow audit):
`)
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  -%s\n\t%s\n", a.Name, firstLine(a.Doc))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// selected returns the analyzers to run: the flagged subset, or all.
func selected() []*analysis.Analyzer {
	var subset []*analysis.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			subset = append(subset, a)
		}
	}
	if len(subset) == 0 {
		return lint.All()
	}
	return subset
}

// ruleDocs describes the selected analyzers (and the stale-allow audit,
// which always rides along) for the SARIF rules table.
func ruleDocs() []report.RuleDoc {
	var rules []report.RuleDoc
	for _, a := range selected() {
		rules = append(rules, report.RuleDoc{Name: a.Name, Doc: a.Doc})
	}
	rules = append(rules, report.RuleDoc{
		Name: lint.StaleAllowName,
		Doc:  "flag //gemini:allow suppressions that suppress nothing, name an unknown check, or omit their -- reason",
	})
	return rules
}

// versionFlag implements -V=full: the go command hashes this output into its
// cache key, so it embeds a digest of the executable — rebuilding geminivet
// invalidates cached vet results.
type versionFlag struct{}

func (versionFlag) String() string   { return "" }
func (versionFlag) Get() any         { return nil }
func (versionFlag) IsBoolFlag() bool { return true }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), sha256.Sum256(data))
	os.Exit(0)
	return nil
}

// emitFlagDefs answers `geminivet -flags` with the JSON schema cmd/go uses
// to validate pass-through vet flags. Only analyzer-selection flags are
// declared: -fix/-json/-sarif are standalone modes, not vet pass-throughs.
func emitFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	for _, a := range lint.All() {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, _ := json.MarshalIndent(defs, "", "\t")
	os.Stdout.Write(append(data, '\n'))
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg (see
// cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// loadDepFacts seeds a fact store with the vetx payloads of the package's
// dependencies. Unreadable or pre-JSON payloads are skipped — a missing fact
// only narrows what the importing analyzer can see.
func loadDepFacts(cfg *vetConfig) *analysis.FactStore {
	facts := analysis.NewFactStore()
	for dep, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue
		}
		facts.DecodePackage(dep, data)
	}
	return facts
}

// writeVetxFacts encodes the analyzed package's facts as its vetx payload.
func writeVetxFacts(cfg *vetConfig, facts *analysis.FactStore) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := facts.EncodePackage(cfg.ImportPath)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatal(err)
	}
}

// runUnitchecker analyzes one compiled package described by a vet.cfg.
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	facts := loadDepFacts(&cfg)

	if cfg.VetxOnly {
		// Downstream packages only need this package's facts, not its
		// diagnostics. Timer-tag facts are defined syntactically, so a plain
		// parse (no export data, no type check) produces them.
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range cfg.GoFiles {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				continue // a package that does not parse exports no facts
			}
			files = append(files, f)
		}
		if decls := lint.CollectTimerTagFacts(fset, files); len(decls) > 0 {
			if err := facts.Export(cfg.ImportPath, "timertag", lint.TimerTagFact{Decls: decls}); err != nil {
				fatal(err)
			}
		}
		writeVetxFacts(&cfg, facts)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetxFacts(&cfg, facts)
				return 0
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data: ImportMap takes
	// import paths to canonical package paths, PackageFile takes those to
	// .a/export files readable by the gc importer.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := newTypesInfo()
	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" && strings.HasPrefix(cfg.GoVersion, "go") {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetxFacts(&cfg, facts)
			return 0
		}
		fatal(fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err))
	}

	// Point the hotpath annotation oracle at the module so cross-package
	// callee annotations resolve from source.
	if root, err := load.FindModuleRoot(cfg.Dir); err == nil {
		lint.SetModuleInfo(root, cfg.ModulePath)
	}

	n := analyze(fset, files, pkg, info, facts, nil)
	writeVetxFacts(&cfg, facts)
	if n > 0 {
		return 2
	}
	return 0
}

// runStandalone loads packages from source (no go vet in front).
func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := load.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	lint.SetModuleInfo(loader.ModuleRoot, loader.ModulePath)

	paths, err := expandPatterns(loader, wd, patterns)
	if err != nil {
		fatal(err)
	}
	facts := analysis.NewFactStore()
	var collected []report.Diagnostic
	total := 0
	for _, ip := range paths {
		pkg, err := loader.Load(ip)
		if err != nil {
			fatal(err)
		}
		var diags []analysis.Diagnostic
		total += analyze(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, facts, &diags)
		for _, d := range diags {
			collected = append(collected, report.Resolve(pkg.Fset, d))
		}
		if *fixFlag {
			applyFixes(pkg.Fset, pkg.Files, diags)
		}
	}
	if err := writeReports(collected, root); err != nil {
		fatal(err)
	}
	if total > 0 {
		return 2
	}
	return 0
}

// applyFixes rewrites, in place, every file a diagnostic's first suggested
// fix edits.
func applyFixes(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		fixed, n, err := analysis.ApplyFixes(fset, name, src, diags)
		if err != nil {
			fatal(err)
		}
		if n == 0 {
			continue
		}
		if err := os.WriteFile(name, fixed, 0o666); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "geminivet: applied %d fix(es) to %s\n", n, name)
	}
}

// writeReports emits the -json and -sarif reports when requested. The SARIF
// output is validated before it is written: CI uploads it sight unseen, so a
// malformed document must fail here, not in the annotation service.
func writeReports(diags []report.Diagnostic, moduleRoot string) error {
	if *jsonFlag != "" {
		data, err := report.JSON(diags)
		if err != nil {
			return err
		}
		if err := writeOutput(*jsonFlag, data); err != nil {
			return err
		}
	}
	if *sarifFlag != "" {
		data, err := report.SARIF(diags, moduleRoot, ruleDocs())
		if err != nil {
			return err
		}
		if err := report.ValidateSARIF(data); err != nil {
			return fmt.Errorf("internal error: generated SARIF is invalid: %w", err)
		}
		if err := writeOutput(*sarifFlag, data); err != nil {
			return err
		}
	}
	return nil
}

func writeOutput(dest string, data []byte) error {
	if dest == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(dest, data, 0o666)
}

// expandPatterns resolves go-style package patterns (dir, ./dir, dir/...)
// against the module.
func expandPatterns(loader *load.Loader, wd string, patterns []string) ([]string, error) {
	all, err := loader.ListPackages()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(ip string) {
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = wd
			}
			prefix, err := loader.ImportPathFor(absJoin(wd, base))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, ip := range all {
				if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
					add(ip)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
			continue
		}
		ip, err := loader.ImportPathFor(absJoin(wd, pat))
		if err != nil {
			return nil, err
		}
		add(ip)
	}
	sort.Strings(out)
	return out, nil
}

func absJoin(wd, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(wd, p)
}

// analyze runs the selected analyzers as one suite (shared //gemini:allow
// tracking, stale-suppression audit, cross-package facts) over one package,
// printing diagnostics to stderr; returns the diagnostic count. When sink is
// non-nil the raw diagnostics are appended to it for -fix/-json/-sarif.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	facts *analysis.FactStore, sink *[]analysis.Diagnostic) int {
	n := 0
	err := lint.RunPackage(lint.SuitePackage{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, selected(), facts, func(d analysis.Diagnostic) {
		p := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", p, d.Message, d.Analyzer)
		if sink != nil {
			*sink = append(*sink, d)
		}
		n++
	})
	if err != nil {
		fatal(fmt.Errorf("%s: %w", pkg.Path(), err))
	}
	return n
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geminivet:", err)
	os.Exit(1)
}
