// Command geminisim runs the reproduction experiments: every table and
// figure of the paper's evaluation, plus the ablation studies.
//
// Usage:
//
//	geminisim -exp fig10            # one experiment
//	geminisim -exp all              # everything
//	geminisim -exp fig12 -small     # fast small-scale platform
//	geminisim -list                 # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gemini/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list)")
		small    = flag.Bool("small", false, "use the fast small-scale platform")
		list     = flag.Bool("list", false, "list experiment names and exit")
		durScale = flag.Float64("durscale", 0, "scale simulated durations (default 1.0, or 0.2 with -small)")
		workers  = flag.Int("workers", harness.DefaultWorkers(), "worker goroutines for the experiment grids (1 = serial; results are identical)")
	)
	flag.Parse()

	if *list {
		set := harness.NewExperimentSet(nil, 1)
		for _, n := range set.Names() {
			fmt.Println(n)
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building platform (small=%v)...\n", *small)
	p := harness.Shared(*small)
	mean, p95, min, max := p.PoolStats()
	fmt.Fprintf(os.Stderr, "platform ready in %v: pool service times mean %.2f ms, p95 %.2f, range %.2f-%.2f\n",
		time.Since(start).Round(time.Millisecond), mean, p95, min, max)

	scale := *durScale
	if scale == 0 {
		scale = 1
		if *small {
			scale = 0.2
		}
	}
	set := harness.NewExperimentSet(p, scale)
	set.Workers = *workers
	fmt.Fprintf(os.Stderr, "experiment grids run on %d worker(s)\n", *workers)

	names := []string{*exp}
	if *exp == "all" {
		names = set.Names()
	}
	for _, name := range names {
		t0 := time.Now()
		rep, err := set.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(rep.String())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}
