// Command geminisim runs the reproduction experiments: every table and
// figure of the paper's evaluation, plus the ablation studies.
//
// Usage:
//
//	geminisim -exp fig10            # one experiment
//	geminisim -exp all              # everything
//	geminisim -exp fig12 -small     # fast small-scale platform
//	geminisim -list                 # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"gemini/internal/harness"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment to run (see -list)")
		small        = flag.Bool("small", false, "use the fast small-scale platform")
		list         = flag.Bool("list", false, "list experiment names and exit")
		durScale     = flag.Float64("durscale", 0, "scale simulated durations (default 1.0, or 0.2 with -small)")
		workers      = flag.Int("workers", harness.DefaultWorkers(), "worker goroutines for the experiment grids and -cluster sharding (1 = serial; results are identical)")
		cluster      = flag.Int("cluster", 0, "run the §V multi-core cluster sweep over this many cores and exit (sharded across -workers threads)")
		shards       = flag.Int("shards", 0, "run one shards × replicas topology cell and exit: prints a summary and the gemini_cluster_* telemetry exposition")
		replicas     = flag.Int("replicas", 1, "replicas per shard for -shards / -capacity")
		router       = flag.String("router", "power-aware", "replica router for -shards / -capacity: round-robin, least-loaded, deadline-aware, power-aware")
		powerCap     = flag.Float64("power-cap", 0, "cluster power cap in modeled watts for -shards / -capacity (0 = uncapped)")
		capIvMs      = flag.Float64("cap-interval", 0, "power-cap control interval in ms (0 = default)")
		capacity     = flag.Bool("capacity", false, "run the capacity-planning sweep (replicas × RPS × cap) over -shards shards and exit")
		timeline     = flag.String("timeline", "", "run the cluster timeline cell and write the sampled series (JSONL) to this path; without -shards it runs the canonical 8×3 power-aware 40 W drift cell")
		timelineCSV  = flag.String("timeline-csv", "", "also write the timeline as CSV to this path")
		timelineHTML = flag.String("timeline-html", "", "also write the self-contained SVG timeline dashboard to this path")
		sampleIvMs   = flag.Float64("sample-interval", 100, "timeline sample interval in simulated ms")
		sloReport    = flag.Bool("slo", false, "with the timeline flags: also print the SLO error-budget burn table for the sampled run")
		sloTarget    = flag.Float64("slo-target", 99, "SLO target percentile for -slo")
		logPath      = flag.String("log-decisions", "", "write per-request decision records (JSONL) for one policy/trace cell to this path and exit")
		logPol       = flag.String("log-policy", "Gemini", "policy for -log-decisions")
		logTrace     = flag.String("log-trace", "wiki", "trace for -log-decisions (wiki, lucene, trec)")
		phaseRep     = flag.Bool("phase-report", false, "print the per-phase latency/energy waterfall table (every policy on -log-trace) and exit")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		set := harness.NewExperimentSet(nil, 1)
		for _, n := range set.Names() {
			fmt.Println(n)
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building platform (small=%v)...\n", *small)
	p := harness.Shared(*small)
	mean, p95, min, max := p.PoolStats()
	fmt.Fprintf(os.Stderr, "platform ready in %v: pool service times mean %.2f ms, p95 %.2f, range %.2f-%.2f\n",
		time.Since(start).Round(time.Millisecond), mean, p95, min, max)

	scale := *durScale
	if scale == 0 {
		scale = 1
		if *small {
			scale = 0.2
		}
	}

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, tracer, err := p.LogDecisions(f, *logPol, *logTrace, 60, 120_000*scale)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		q := tracer.Quality()
		fmt.Fprintf(os.Stderr, "%s on %s: %d decisions -> %s\n", *logPol, *logTrace, tracer.Emitted(), *logPath)
		fmt.Fprintf(os.Stderr, "completed %d, dropped %d, violation %.2f%%, p95 %.2f ms\n",
			res.Completed, res.Dropped, res.ViolationRate()*100, res.TailLatencyMs(95))
		if q.N > 0 {
			fmt.Fprintf(os.Stderr, "prediction audit: MAE %.2f ms, p95 |err| %.2f ms, coverage %.1f%% (n=%d)\n",
				q.MAEMs, q.P95Ms, q.CoverageRate*100, q.N)
		}
		return
	}

	if *cluster > 0 {
		rep := p.ClusterReport(*cluster, *workers, 60, 120_000*scale)
		fmt.Println(rep.String())
		return
	}

	if *capacity {
		nShards := *shards
		if nShards < 1 {
			nShards = 2
		}
		caps := []float64{0}
		if *powerCap > 0 {
			caps = append(caps, *powerCap)
		}
		rep := p.CapacityReport(harness.CapacitySpec{
			Shards:     nShards,
			Replicas:   []int{1, 2, 3},
			EngineRPS:  []float64{40, 60},
			CapsW:      caps,
			Router:     *router,
			DurationMs: 60_000 * scale,
			Seed:       1,
		}, *workers)
		fmt.Println(rep.String())
		return
	}

	if *timeline != "" || *timelineCSV != "" || *timelineHTML != "" || *sloReport {
		spec := harness.TimelineSpec{
			DurationMs:       60_000 * scale,
			SampleIntervalMs: *sampleIvMs,
			Seed:             1,
		}
		if *shards > 0 {
			spec.Shards = *shards
			spec.Replicas = *replicas
			spec.Router = *router
			spec.CapW = *powerCap
			spec.CapIntervalMs = *capIvMs
		}
		tlr, err := p.TimelineReport(spec, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		write := func(path string, render func(f *os.File) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				err = render(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "timeline: %d samples -> %s\n", tlr.Series.Len(), path)
		}
		write(*timeline, func(f *os.File) error { return tlr.Series.WriteJSONL(f) })
		write(*timelineCSV, func(f *os.File) error { return tlr.Series.WriteCSV(f) })
		write(*timelineHTML, func(f *os.File) error {
			title := fmt.Sprintf("Gemini cluster timeline — %d×%d %s", tlr.Spec.Shards, tlr.Spec.Replicas, tlr.Spec.Router)
			return harness.WriteTimelineHTML(f, title, tlr.Series)
		})
		fmt.Println(tlr.Report.String())
		if *sloReport {
			fmt.Println(harness.SLOReport(tlr, *sloTarget).String())
		}
		return
	}

	if *shards > 0 {
		rep, expo, err := p.TopologyReport(harness.TopologyRunSpec{
			Shards:        *shards,
			Replicas:      *replicas,
			Router:        *router,
			CapW:          *powerCap,
			CapIntervalMs: *capIvMs,
			DurationMs:    60_000 * scale,
			Seed:          1,
		}, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(rep.String())
		fmt.Print(expo)
		return
	}

	if *phaseRep {
		rep, err := p.PhaseReport(*logTrace, 60, 120_000*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(rep.String())
		return
	}

	set := harness.NewExperimentSet(p, scale)
	set.Workers = *workers
	fmt.Fprintf(os.Stderr, "experiment grids run on %d worker(s)\n", *workers)

	names := []string{*exp}
	if *exp == "all" {
		names = set.Names()
	}
	for _, name := range names {
		t0 := time.Now()
		rep, err := set.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(rep.String())
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}
