// Command tracegen generates and inspects the synthetic query-arrival traces
// (Wikipedia / Lucene-nightly / TREC models of Fig. 1b and Figs. 12–14),
// writing arrivals as CSV and printing summary statistics.
//
// Usage:
//
//	tracegen -kind wiki -rps 60 -duration 1000 > wiki.csv
//	tracegen -kind lucene -stats            # statistics only, no CSV
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gemini/internal/stats"
	"gemini/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "wiki", "trace model: wiki, lucene, trec, fixed, wiki-long")
		rps      = flag.Float64("rps", 60, "average request rate")
		duration = flag.Float64("duration", 1000, "duration in seconds (hours for wiki-long)")
		seed     = flag.Int64("seed", 1, "random seed")
		statsFlg = flag.Bool("stats", false, "print statistics instead of CSV")
	)
	flag.Parse()

	var tr *trace.Trace
	switch *kind {
	case "fixed":
		tr = trace.GenFixedRPS(*rps, *duration*1000, *seed)
	case "wiki-long":
		tr = trace.GenWikipediaLong(*rps, *duration, *seed)
	default:
		tr = trace.GenEvalTrace(*kind, *rps, *duration*1000, *seed)
	}

	if *statsFlg {
		printStats(tr)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "arrival_ms")
	for _, a := range tr.Arrivals {
		fmt.Fprintf(w, "%.3f\n", a)
	}
	fmt.Fprintf(os.Stderr, "%d arrivals, mean %.1f RPS\n", tr.Len(), tr.MeanRPS())
}

func printStats(tr *trace.Trace) {
	fmt.Printf("trace: %s\n", tr.Name)
	fmt.Printf("arrivals: %d over %.1f s (mean %.2f RPS)\n",
		tr.Len(), tr.DurationMs()/1000, tr.MeanRPS())
	sec := tr.RPSSeries(1000, tr.DurationMs())
	if len(sec) > 0 {
		mn, _ := stats.Min(sec)
		mx, _ := stats.Max(sec)
		mean, _ := stats.Mean(sec)
		fmt.Printf("per-second RPS: min %.1f mean %.1f max %.1f\n", mn, mean, mx)
	}
	gaps := tr.InterArrivalsMs()
	if len(gaps) > 0 {
		mean, _ := stats.Mean(gaps)
		p99, _ := stats.Percentile(gaps, 99)
		fmt.Printf("inter-arrival: mean %.2f ms, p99 %.2f ms\n", mean, p99)
	}
}
