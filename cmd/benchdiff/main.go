// Command benchdiff renders `go test -bench` output into the BENCH_sim.json
// schema and diffs two such files, gating on engine throughput regressions.
//
// Render mode converts benchmark text to JSON (replacing the ad-hoc awk the
// CI bench job used to carry), keeping custom metrics like events/sec:
//
//	benchdiff -render bench.txt > BENCH_current.json
//
// Diff mode compares a current file against the checked-in baseline:
//
//	benchdiff -baseline BENCH_sim.json -current BENCH_current.json \
//	    -tol 0.15 -calibrate BenchmarkClusterLargeLinear
//
// Only benchmarks reporting events/sec participate in the gate — wall-clock
// ns/op of the remaining benchmarks is too machine-dependent to gate on. The
// -calibrate flag names a reference benchmark whose current/baseline ratio is
// the machine-speed yardstick: every other ratio is divided by it, so a CI
// runner that is uniformly 2x slower than the machine that produced the
// baseline still passes, while a change that slows the calendar engine
// relative to the linear reference fails. The reference itself always
// normalizes to exactly 1.
//
// Allocation counts need no calibration — allocs/op is machine-independent —
// so every benchmark recorded with -benchmem is also gated absolutely:
// current allocs/op may not exceed baseline·(1+allocs-tol) plus a couple of
// allocations of slack (the runtime occasionally charges a stray allocation
// to the benchmark loop). This is what keeps the telemetry sampler honest:
// a change that starts allocating per sample moves allocs/op by thousands
// and fails the gate even on a much faster machine.
//
// Exit status 1 means a gated benchmark's normalized throughput fell below
// 1-tol or its allocs/op grew past the allocation tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's recorded numbers. EventsPerSec is 0 when the
// benchmark does not report the metric (absent from JSON).
type Bench struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	BytesPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
}

// File is the BENCH_sim.json schema.
type File struct {
	Commit     string  `json:"commit,omitempty"`
	Machine    string  `json:"machine,omitempty"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	render := flag.String("render", "", "render `go test -bench` text output at this path to JSON on stdout")
	baseline := flag.String("baseline", "", "baseline BENCH_sim.json")
	current := flag.String("current", "", "current BENCH_sim.json to compare against the baseline")
	tol := flag.Float64("tol", 0.15, "allowed fractional throughput regression")
	allocsTol := flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op growth (plus allocsSlack absolute); negative disables the allocation gate")
	calibrate := flag.String("calibrate", "", "reference benchmark name for machine-speed normalization")
	commit := flag.String("commit", "", "commit hash to stamp into rendered output")
	note := flag.String("note", "", "free-form note to stamp into rendered output")
	flag.Parse()

	switch {
	case *render != "":
		if err := renderFile(*render, *commit, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	case *baseline != "" && *current != "":
		ok, err := diff(*baseline, *current, *tol, *allocsTol, *calibrate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// renderFile parses benchmark text output and writes the JSON schema.
func renderFile(path, commit, note string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	out := File{Commit: commit, Note: note}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.Machine = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		return out.Benchmarks[i].Name < out.Benchmarks[j].Name
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine decodes one `BenchmarkName  N  val unit  val unit ...` line.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: trimProcSuffix(fields[0])}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "events/sec":
			b.EventsPerSec = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// trimProcSuffix drops the -GOMAXPROCS suffix (BenchmarkFoo-8 -> BenchmarkFoo)
// so names compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// allocsSlack absorbs the occasional stray allocation the runtime charges to
// a benchmark loop (timer churn, map growth in testing internals). It sits on
// top of the fractional allocs-tol so near-zero baselines don't flake.
const allocsSlack = 2

// diff compares current against baseline and reports pass/fail.
func diff(basePath, curPath string, tol, allocsTol float64, calibrate string) (bool, error) {
	base, err := readFile(basePath)
	if err != nil {
		return false, err
	}
	cur, err := readFile(curPath)
	if err != nil {
		return false, err
	}
	baseBy := indexByName(base)
	curBy := indexByName(cur)

	// Machine-speed yardstick: the reference benchmark's throughput ratio.
	norm := 1.0
	if calibrate != "" {
		b, okB := baseBy[calibrate]
		c, okC := curBy[calibrate]
		if !okB || !okC || b.EventsPerSec <= 0 || c.EventsPerSec <= 0 {
			return false, fmt.Errorf("calibration benchmark %s missing events/sec in baseline or current", calibrate)
		}
		norm = c.EventsPerSec / b.EventsPerSec
		fmt.Printf("calibration: %s throughput ratio %.3f (current/baseline)\n", calibrate, norm)
	}

	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		names = append(names, name)
	}
	sort.Strings(names)

	pass := true
	gated := 0
	for _, name := range names {
		b := baseBy[name]
		c, ok := curBy[name]
		if !ok {
			continue
		}
		if b.EventsPerSec > 0 && c.EventsPerSec > 0 {
			gated++
			ratio := c.EventsPerSec / b.EventsPerSec / norm
			status := "ok"
			if ratio < 1-tol {
				status = "REGRESSION"
				pass = false
			}
			fmt.Printf("%-40s baseline %12.0f ev/s  current %12.0f ev/s  normalized %.3fx  %s\n",
				name, b.EventsPerSec, c.EventsPerSec, ratio, status)
		}
		// Allocation gate: machine-independent, so no calibration. A zero
		// on both sides means either a genuinely alloc-free benchmark or one
		// recorded without -benchmem; both are safe to skip.
		if allocsTol >= 0 && (b.AllocsPerOp > 0 || c.AllocsPerOp > 0) {
			gated++
			limit := b.AllocsPerOp*(1+allocsTol) + allocsSlack
			status := "ok"
			if c.AllocsPerOp > limit {
				status = "ALLOC REGRESSION"
				pass = false
			}
			fmt.Printf("%-40s baseline %12.0f allocs/op  current %9.0f allocs/op  limit %9.0f  %s\n",
				name, b.AllocsPerOp, c.AllocsPerOp, limit, status)
		}
	}
	if gated == 0 {
		return false, fmt.Errorf("no gateable benchmarks (events/sec or allocs/op) in common between %s and %s", basePath, curPath)
	}
	if !pass {
		fmt.Printf("FAIL: throughput fell more than %.0f%% or allocs/op grew more than %.0f%% against %s\n", tol*100, allocsTol*100, basePath)
	}
	return pass, nil
}

func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func indexByName(f File) map[string]Bench {
	m := make(map[string]Bench, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b
	}
	return m
}
