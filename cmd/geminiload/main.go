// Command geminiload is an open-loop, coordinated-omission-free load
// generator for the isnserver aggregator. It precomputes a fixed arrival
// schedule from the simulator's partitioned RNG streams (so two runs with the
// same seed and rate offer the exact same load), fires each request at its
// scheduled instant regardless of how slow the server is, and measures every
// latency against the *intended* send time — the discipline that keeps queueing
// delay visible instead of silently absorbed into the arrival process.
//
// Usage:
//
//	isnserver -shards 2 -budget 10 &
//	geminiload -rps 400 -duration 10s -deadline 10
//
// The run ends with a machine-readable SoakReport on stdout (JSON) plus a
// one-line greppable summary on stderr:
//
//	geminiload: rps=400 sent=4003 ok=3847 errors=0 shed=156 p99=87.3ms slo_bad=212 fast_burn=5.31 budget_remaining=0.472
//
// Open-loop semantics: when -max-inflight requests are already outstanding at
// an arrival's scheduled instant the request is shed client-side and counted
// as an SLO-bad event — the generator never blocks the schedule on the server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/server"
	"gemini/internal/sim"
	"gemini/internal/stats"
	"gemini/internal/telemetry"
)

// arrival is one precomputed schedule slot: when to send (offset from run
// start) and which query from the pool to send.
type arrival struct {
	at    time.Duration
	query int
}

// SoakReport is the machine-readable run summary. Latency percentiles are
// measured from the intended send time (schedule offset), not the actual
// send time, so client-side backpressure cannot hide server queueing.
type SoakReport struct {
	Target      string  `json:"target"`
	RPS         float64 `json:"rps"`
	RampToRPS   float64 `json:"ramp_to_rps,omitempty"`
	DurationSec float64 `json:"duration_sec"`
	DeadlineMs  float64 `json:"deadline_ms"`
	TargetPct   float64 `json:"target_pct"`
	Seed        int64   `json:"seed"`
	MaxInflight int     `json:"max_inflight"`

	Scheduled uint64 `json:"scheduled"`
	Sent      uint64 `json:"sent"`
	OK        uint64 `json:"ok"`
	Errors    uint64 `json:"errors"`
	Shed      uint64 `json:"shed"`

	AchievedRPS float64 `json:"achieved_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`

	SLO telemetry.SLOSnapshot `json:"slo"`
}

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080/search", "aggregator search endpoint")
		rps      = flag.Float64("rps", 200, "offered load in requests per second")
		rampTo   = flag.Float64("ramp-to", 0, "linearly ramp the offered rate from -rps to this over -duration (0 = constant)")
		duration = flag.Duration("duration", 10*time.Second, "soak length")
		deadline = flag.Float64("deadline", server.DefaultBudgetMs, "SLO deadline in ms (latency past this counts against the error budget)")
		sloPct   = flag.Float64("slo-target", 99, "SLO target percentile for the burn-rate windows")
		seed     = flag.Int64("seed", 1, "base seed for the arrival schedule and query choice (same seed = same offered load)")
		inflight = flag.Int("max-inflight", 256, "client-side concurrency cap; arrivals past it are shed, not delayed")
		k        = flag.Int("k", 10, "result-set size requested per query")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
		report   = flag.String("report", "", "also write the JSON SoakReport to this file ('' = stdout only)")
		queries  = flag.Int("query-pool", 512, "distinct queries pre-sampled from the shared corpus vocabulary")
	)
	flag.Parse()
	if *rps <= 0 || *duration <= 0 || *inflight <= 0 || *queries <= 0 {
		fmt.Fprintln(os.Stderr, "geminiload: -rps, -duration, -max-inflight and -query-pool must be positive")
		os.Exit(2)
	}

	// Everything random is precomputed here, before the first wall-clock
	// read: the arrival schedule from the Workload stream, the query choices
	// from the Sched stream. The run loop only consumes the fixed plan.
	rng := sim.NewPartitionedRNG(*seed)
	pool := buildQueryPool(rng.Seed(), *queries)
	schedule := buildSchedule(rng, *rps, *rampTo, *duration, *queries)

	run := newRunner(*target, *k, *timeout, *inflight, telemetry.SLOConfig{
		DeadlineMs: *deadline,
		TargetPct:  *sloPct,
	})
	run.drive(schedule, pool)

	rep := run.report(schedule, *duration)
	rep.Target = *target
	rep.RPS = *rps
	rep.RampToRPS = *rampTo
	rep.DeadlineMs = *deadline
	rep.TargetPct = *sloPct
	rep.Seed = *seed
	rep.MaxInflight = *inflight

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "geminiload: marshal report:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	if *report != "" {
		if err := os.WriteFile(*report, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "geminiload: write report:", err)
			os.Exit(1)
		}
	}
	fastBurnRate := 0.0
	if len(rep.SLO.Windows) > 0 {
		fastBurnRate = rep.SLO.Windows[0].BurnRate
	}
	fmt.Fprintf(os.Stderr,
		"geminiload: rps=%g sent=%d ok=%d errors=%d shed=%d p99=%.1fms slo_bad=%d fast_burn=%.2f budget_remaining=%.3f\n",
		*rps, rep.Sent, rep.OK, rep.Errors, rep.Shed, rep.P99Ms, rep.SLO.Bad, fastBurnRate, rep.SLO.BudgetRemaining)
}

// buildQueryPool samples n query strings from the same corpus family the
// isnserver shards index (SmallSpec, shard-0 seed), so offered queries hit
// real vocabulary terms instead of scoring empty.
func buildQueryPool(seed int64, n int) []string {
	spec := corpus.SmallSpec()
	spec.Seed = 1 // matches isnserver shard 0
	c := corpus.Generate(spec)
	gen := corpus.NewQueryGen(c, seed+100)
	pool := make([]string, n)
	for i := range pool {
		pool[i] = gen.Next().Text
	}
	return pool
}

// buildSchedule draws the full open-loop arrival plan: exponential
// inter-arrivals at the (possibly ramping) offered rate, plus a query-pool
// index per arrival. Deterministic in the partitioned RNG's seed.
func buildSchedule(rng *sim.PartitionedRNG, rps, rampTo float64, d time.Duration, poolSize int) []arrival {
	wl := rng.Workload()
	sched := rng.Sched()
	horizon := d.Seconds()
	var plan []arrival
	t := 0.0
	for {
		rate := rps
		if rampTo > 0 {
			rate = rps + (rampTo-rps)*(t/horizon)
		}
		t += wl.ExpFloat64() / rate
		if t >= horizon {
			return plan
		}
		plan = append(plan, arrival{
			at:    time.Duration(t * float64(time.Second)),
			query: sched.Intn(poolSize),
		})
	}
}

// runner executes a precomputed schedule against the target and folds every
// outcome into the SLO tracker and the latency reservoir.
type runner struct {
	target string
	k      int
	client *http.Client
	sem    chan struct{}

	mu      sync.Mutex
	tracker *telemetry.SLOTracker
	t0      time.Time
	lats    []float64
	sent    uint64
	ok      uint64
	errors  uint64
	shed    uint64
	wg      sync.WaitGroup
}

func newRunner(target string, k int, timeout time.Duration, maxInflight int, cfg telemetry.SLOConfig) *runner {
	return &runner{
		target:  target,
		k:       k,
		client:  &http.Client{Timeout: timeout},
		sem:     make(chan struct{}, maxInflight),
		tracker: telemetry.NewSLOTracker(cfg),
	}
}

// drive walks the schedule in real time. The dispatcher never blocks on the
// server: if the in-flight cap is hit at an arrival's instant the request is
// shed (counted SLO-bad) and the schedule marches on.
func (r *runner) drive(plan []arrival, pool []string) {
	bodies := make([][]byte, len(pool))
	for i, q := range pool {
		b, err := json.Marshal(map[string]any{"query": q, "k": r.k})
		if err != nil {
			fmt.Fprintln(os.Stderr, "geminiload: marshal query:", err)
			os.Exit(1)
		}
		bodies[i] = b
	}
	r.t0 = time.Now()
	for _, a := range plan {
		if wait := time.Until(r.t0.Add(a.at)); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case r.sem <- struct{}{}:
		default:
			r.mu.Lock()
			r.shed++
			r.tracker.ObserveBad(r.nowMsLocked())
			r.mu.Unlock()
			continue
		}
		r.wg.Add(1)
		go r.fire(a, bodies[a.query])
	}
	r.wg.Wait()
}

// fire sends one scheduled request and records its outcome. Latency is
// measured against the intended send instant (t0 + schedule offset), which
// charges any client-side dispatch lag to the request instead of hiding it.
func (r *runner) fire(a arrival, body []byte) {
	defer r.wg.Done()
	defer func() { <-r.sem }()
	intended := r.t0.Add(a.at)
	resp, err := r.client.Post(r.target, "application/json", bytes.NewReader(body))
	httpOK := false
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		httpOK = resp.StatusCode == http.StatusOK
	}
	latMs := float64(time.Since(intended)) / float64(time.Millisecond)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent++
	if !httpOK {
		r.errors++
		r.tracker.ObserveBad(r.nowMsLocked())
		return
	}
	r.ok++
	r.lats = append(r.lats, latMs)
	r.tracker.Observe(r.nowMsLocked(), latMs)
}

// nowMsLocked converts the wall clock to tracker time (ms since run start).
// Callers hold r.mu.
func (r *runner) nowMsLocked() float64 {
	return float64(time.Since(r.t0)) / float64(time.Millisecond)
}

// report assembles the SoakReport after the run drains.
func (r *runner) report(plan []arrival, d time.Duration) SoakReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := SoakReport{
		DurationSec: d.Seconds(),
		Scheduled:   uint64(len(plan)),
		Sent:        r.sent,
		OK:          r.ok,
		Errors:      r.errors,
		Shed:        r.shed,
	}
	elapsed := time.Since(r.t0).Seconds()
	if elapsed > 0 {
		rep.AchievedRPS = float64(r.sent) / elapsed
	}
	if len(r.lats) > 0 {
		sort.Float64s(r.lats)
		rep.P50Ms = stats.PercentileSorted(r.lats, 50)
		rep.P90Ms = stats.PercentileSorted(r.lats, 90)
		rep.P95Ms = stats.PercentileSorted(r.lats, 95)
		rep.P99Ms = stats.PercentileSorted(r.lats, 99)
		rep.P999Ms = stats.PercentileSorted(r.lats, 99.9)
		rep.MaxMs = r.lats[len(r.lats)-1]
	}
	rep.SLO = r.tracker.Snapshot(r.nowMsLocked(), 60)
	return rep
}
