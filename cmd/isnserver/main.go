// Command isnserver runs the paper's partition-aggregate search architecture
// (Fig. 1a) as real HTTP services on localhost: N Index Serving Nodes (each
// the Fig. 9 single-working-thread structure) plus an aggregator endpoint
// that broadcasts queries and merges the top-K.
//
// Usage:
//
//	isnserver -shards 4 -port 8080
//	curl -s -X POST localhost:8080/search -d '{"query":"united kingdom"}'
//
// Each ISN also listens on port+1+shard for direct inspection:
//
//	curl -s -X POST localhost:8081/search -d '{"query":"canada"}'
//
// Every listener exposes the shared observability surface:
//
//	curl -s localhost:8080/metrics          # Prometheus text, all shards
//	curl -s localhost:8080/debug/decisions  # recent aggregations as JSON
//	curl -s localhost:8081/debug/decisions  # ISN-0's per-query DVFS decisions
//	curl -s localhost:8080/debug/traces     # stitched query waterfalls (-trace-sample)
//	curl -s localhost:8080/debug/pprof/     # live profiling (also per ISN)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/index"
	"gemini/internal/predictor"
	"gemini/internal/search"
	"gemini/internal/server"
	"gemini/internal/telemetry"
)

func main() {
	var (
		shards  = flag.Int("shards", 4, "number of ISN shards")
		port    = flag.Int("port", 8080, "aggregator port (ISNs use port+1..port+shards)")
		k       = flag.Int("k", 10, "result-set size")
		partial = flag.Bool("partial", true, "partial aggregation: ignore stragglers past -timeout")
		timeout = flag.Duration("timeout", 100*time.Millisecond, "straggler cutoff for -partial")
		predict = flag.Bool("predict", false, "train a linear service-time predictor per shard (S*/E* annotations)")
		budget  = flag.Float64("budget", server.DefaultBudgetMs, "per-query latency budget in ms (DVFS plans, deadline slack)")
		ringCap = flag.Int("decision-ring", 512, "decisions retained per /debug/decisions endpoint")
		sample  = flag.Float64("trace-sample", 0, "head-based trace sampling rate in [0,1]: fraction of queries stitched into /debug/traces waterfalls (0 = off)")
		spanCap = flag.Int("span-ring", 4096, "spans retained per /debug/traces endpoint")
		tlIv    = flag.Duration("timeline-interval", time.Second, "wall-clock sample interval for the /debug/timeline series (0 disables the samplers)")
		tlCap   = flag.Int("timeline-ring", 600, "samples retained per /debug/timeline endpoint")
		sloPct  = flag.Float64("slo-target", 99, "SLO target percentile for the /debug/slo burn trackers (deadline = -budget)")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "isnserver")
	met := server.NewMetrics(reg)
	// One SLO burn tracker per listener, created up front so the shared
	// /metrics handler can refresh every binding's gauges at scrape time
	// without racing listener startup.
	sloCfg := telemetry.SLOConfig{DeadlineMs: *budget, TargetPct: *sloPct}
	sloISN := make([]*server.SLOBinding, *shards)
	for s := range sloISN {
		sloISN[s] = server.NewSLOBinding(reg, fmt.Sprintf("isn-%d", s), sloCfg)
	}
	sloAgg := server.NewSLOBinding(reg, "aggregator", sloCfg)
	metricsHandler := server.MetricsWithSLO(reg, append(append([]*server.SLOBinding{}, sloISN...), sloAgg)...)

	var urls []string
	for s := 0; s < *shards; s++ {
		spec := corpus.SmallSpec()
		spec.Seed = int64(s + 1)
		spec.NumDocs = 800 + 400*s
		c := corpus.Generate(spec)
		eng := search.NewEngine(index.Build(c), *k)
		isn := server.NewISN(s, c, eng, search.DefaultCostModel())
		isn.BudgetMs = *budget
		if *predict {
			// Label a query sample on this shard and fit the linear
			// classifier (Fig. 7's cheap baseline — fast enough to train at
			// startup) plus the Gemini-alpha moving-average error bound.
			b := &predictor.Builder{
				Engine:    eng,
				Extractor: isn.Extractor,
				Cost:      isn.Cost,
				Jitter:    search.DefaultJitter(),
			}
			gen := corpus.NewQueryGen(c, spec.Seed+100)
			ds := b.Build(gen.Batch(400), 0.2, spec.Seed)
			isn.Service = predictor.TrainLinear(ds.Train, predictor.DefaultConfig())
			isn.ErrPred = predictor.NewMovingAvgError(60)
			log.Printf("ISN-%d: trained %s on %d samples", s, isn.Service.Name(), len(ds.Train))
		}
		isn.Instrument(met)
		tracer := telemetry.NewTracer(*ringCap)
		isn.Tracer = tracer
		spans := telemetry.NewSpanTracer(*spanCap)
		isn.Spans = spans
		isn.SLO = sloISN[s]
		isn.Start()

		mux := http.NewServeMux()
		mux.Handle("/search", isn)
		mux.Handle("/metrics", metricsHandler)
		mux.Handle("/debug/decisions", telemetry.DecisionsHandler(tracer, 100))
		mux.Handle("/debug/traces", telemetry.TracesHandler(spans, 20))
		mux.Handle("/debug/slo", sloISN[s].Handler(120))
		if *tlIv > 0 {
			sampler := server.StartTimeline(isn.TimelineCounters, ladderGHz(), *tlIv, *tlCap)
			mux.Handle("/debug/timeline", sampler.Handler(60))
		}
		registerPprof(mux)
		addr := fmt.Sprintf("127.0.0.1:%d", *port+1+s)
		go func(a string, m *http.ServeMux) {
			log.Fatal(http.ListenAndServe(a, m))
		}(addr, mux)
		urls = append(urls, "http://"+addr)
		log.Printf("isn-%d: listen=%s docs=%d predictor=%s budget=%.1fms", s, addr, spec.NumDocs, predictorMode(*predict), *budget)
	}

	agg := server.NewAggregator(urls, *k)
	if *partial {
		agg.Policy = server.Partial
		agg.Quorum = *shards
		agg.Timeout = *timeout
	}
	agg.BudgetMs = *budget
	agg.Instrument(met)
	aggTracer := telemetry.NewTracer(*ringCap)
	agg.Tracer = aggTracer
	aggSpans := telemetry.NewSpanTracer(*spanCap)
	agg.Spans = aggSpans
	agg.TraceSample = *sample
	agg.SLO = sloAgg

	mux := http.NewServeMux()
	mux.Handle("/search", agg)
	mux.Handle("/metrics", metricsHandler)
	mux.Handle("/debug/decisions", telemetry.DecisionsHandler(aggTracer, 100))
	mux.Handle("/debug/traces", telemetry.TracesHandler(aggSpans, 20))
	mux.Handle("/debug/slo", sloAgg.Handler(120))
	if *tlIv > 0 {
		sampler := server.StartTimeline(agg.TimelineCounters, nil, *tlIv, *tlCap)
		mux.Handle("/debug/timeline", sampler.Handler(60))
	}
	registerPprof(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	addr := fmt.Sprintf("127.0.0.1:%d", *port)
	policy := "wait-all"
	if *partial {
		policy = "partial"
	}
	log.Printf("aggregator: listen=%s shards=%d policy=%s predictor=%s trace-sample=%.2f budget=%.1fms", addr, *shards, policy, predictorMode(*predict), *sample, *budget)
	log.Fatal(http.ListenAndServe(addr, mux))
}

// ladderGHz labels the /debug/timeline residency columns with the modeled
// DVFS ladder's levels.
func ladderGHz() []float64 {
	levels := cpu.DefaultLadder().Levels()
	ghz := make([]float64, len(levels))
	for i, f := range levels {
		ghz[i] = float64(f)
	}
	return ghz
}

// predictorMode renders the -predict flag for the startup summary lines.
func predictorMode(on bool) string {
	if on {
		return "linear+movavg"
	}
	return "none"
}

// registerPprof mounts the net/http/pprof handlers on a non-default mux
// (the blank import only touches http.DefaultServeMux, which none of the
// listeners use).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
