// Command isnserver runs the paper's partition-aggregate search architecture
// (Fig. 1a) as real HTTP services on localhost: N Index Serving Nodes (each
// the Fig. 9 single-working-thread structure) plus an aggregator endpoint
// that broadcasts queries and merges the top-K.
//
// Usage:
//
//	isnserver -shards 4 -port 8080
//	curl -s -X POST localhost:8080/search -d '{"query":"united kingdom"}'
//
// Each ISN also listens on port+1+shard for direct inspection:
//
//	curl -s -X POST localhost:8081/search -d '{"query":"canada"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/index"
	"gemini/internal/search"
	"gemini/internal/server"
)

func main() {
	var (
		shards  = flag.Int("shards", 4, "number of ISN shards")
		port    = flag.Int("port", 8080, "aggregator port (ISNs use port+1..port+shards)")
		k       = flag.Int("k", 10, "result-set size")
		partial = flag.Bool("partial", true, "partial aggregation: ignore stragglers past -timeout")
		timeout = flag.Duration("timeout", 100*time.Millisecond, "straggler cutoff for -partial")
	)
	flag.Parse()

	var urls []string
	for s := 0; s < *shards; s++ {
		spec := corpus.SmallSpec()
		spec.Seed = int64(s + 1)
		spec.NumDocs = 800 + 400*s
		c := corpus.Generate(spec)
		eng := search.NewEngine(index.Build(c), *k)
		isn := server.NewISN(s, c, eng, search.DefaultCostModel())
		isn.Start()

		mux := http.NewServeMux()
		mux.Handle("/search", isn)
		addr := fmt.Sprintf("127.0.0.1:%d", *port+1+s)
		go func(a string, m *http.ServeMux) {
			log.Fatal(http.ListenAndServe(a, m))
		}(addr, mux)
		urls = append(urls, "http://"+addr)
		log.Printf("ISN-%d: %d docs on %s", s, spec.NumDocs, addr)
	}

	agg := server.NewAggregator(urls, *k)
	if *partial {
		agg.Policy = server.Partial
		agg.Quorum = *shards
		agg.Timeout = *timeout
	}
	mux := http.NewServeMux()
	mux.Handle("/search", agg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	addr := fmt.Sprintf("127.0.0.1:%d", *port)
	log.Printf("aggregator on %s (POST /search)", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}
