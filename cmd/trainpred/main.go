// Command trainpred trains the paper's predictors and reports the Fig. 6/7/8
// quality numbers; it can also persist the trained latency classifier and
// error predictor to disk for reuse.
//
// Usage:
//
//	trainpred                  # train, print Fig. 6, 7 and 8
//	trainpred -exp fig7        # just the model comparison
//	trainpred -save models/    # additionally write model files
//	trainpred -paper           # use the paper's 5x128 architecture
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gemini/internal/harness"
	"gemini/internal/predictor"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "which report: fig6, fig7, fig8, all")
		small = flag.Bool("small", false, "use the fast small-scale platform")
		paper = flag.Bool("paper", false, "train the paper's 5x128 architecture (slow)")
		save  = flag.String("save", "", "directory to write trained models to")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	if *small {
		opts = harness.SmallOptions()
	}
	if *paper {
		opts.NNConfig = predictor.PaperConfig()
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "training predictors (%v hidden, %d epochs)...\n",
		opts.NNConfig.Hidden, opts.NNConfig.Epochs)
	p := harness.NewPlatform(opts)
	fmt.Fprintf(os.Stderr, "trained in %v on %d samples\n",
		time.Since(start).Round(time.Millisecond), len(p.Dataset.Train))

	set := harness.NewExperimentSet(p, 1)
	names := []string{"fig6", "fig7", "fig8"}
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		rep, err := set.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(rep.String())
	}

	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		clfPath := filepath.Join(*save, "latency_classifier.gob")
		if err := p.Classifier.SaveFile(clfPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d params)\n", clfPath, p.Classifier.Network().NumParams())
		errPath := filepath.Join(*save, "error_predictor.gob")
		f, err := os.Create(errPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := p.ErrPred.Save(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", errPath)
	}
}
