module gemini

go 1.22
